"""Ablations of the reproduction's design choices (beyond the paper).

Three switches isolate the mechanisms DESIGN.md calls out:

* **Search order** (Section IV-A1a): disabling the above/below-target
  reordering leaves windows in plain execution order, so the current
  kernel is always optimized first and only the fail-safe reserve
  carries future information.
* **Window reserve** (our realization of Equation 3's whole-window
  constraint): disabling it reverts to per-kernel constraint checks,
  letting a kernel take slack that the rest of the window cannot repay.
* **CPU-phase overhead hiding** (Section VI-E's "in practice" remark):
  when kernels are separated by CPU phases with an idle core, optimizer
  time is hidden from the wall clock and only its energy remains.

Shape targets: each mechanism must not *hurt* aggregate performance
when enabled, and the window reserve must be load-bearing for the
benchmarks with below-target phases (EigenValue, Spmv).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup
from repro.sim.simulator import Simulator

__all__ = [
    "PHASE_SENSITIVE",
    "hidden_simulator",
    "ablation_search_order",
    "ablation_window_reserve",
    "ablation_overhead_hiding",
]

#: Benchmarks whose phase structure exercises the window mechanisms.
PHASE_SENSITIVE = ("EigenValue", "Spmv", "kmeans", "hybridsort", "srad")

#: Backwards-compatible alias.
_PHASE_SENSITIVE = PHASE_SENSITIVE


def hidden_simulator(ctx: ExperimentContext) -> Simulator:
    """The overhead-hiding simulator of :func:`ablation_overhead_hiding`.

    Shared with the engine's request matrix so a prefetched ``hidden``
    variant is keyed by exactly the simulator the ablation runs.
    """
    return Simulator(
        apu=ctx.sim.apu,
        counters=ctx.sim.counters,
        overhead=ctx.sim.overhead,
        cpu_phase_s=0.002,  # 2 ms of CPU work between kernel launches
    )


def _rows(ctx: ExperimentContext, tag: str, **kwargs) -> Dict[str, tuple]:
    out = {}
    for name in _PHASE_SENSITIVE:
        turbo = ctx.turbo(name)
        on = ctx.mpc(name)
        off = ctx.mpc_variant(name, tag, **kwargs)
        out[name] = (
            energy_savings_pct(on, turbo),
            energy_savings_pct(off, turbo),
            speedup(on, turbo),
            speedup(off, turbo),
        )
    return out


def ablation_search_order(ctx: ExperimentContext) -> ExperimentTable:
    """MPC with vs without the search-order heuristic."""
    table = ExperimentTable(
        experiment_id="Ablation (search order)",
        title="MPC with the Section IV-A1a search order vs plain "
        "execution order, over Turbo Core",
        headers=["Benchmark", "E% (ordered)", "E% (plain)",
                 "Speedup (ordered)", "Speedup (plain)"],
    )
    for name, row in _rows(ctx, "no_order", use_search_order=False).items():
        table.add_row(name, *[round(v, 3) for v in row])
    return table


def ablation_window_reserve(ctx: ExperimentContext) -> ExperimentTable:
    """MPC with vs without the whole-window fail-safe reserve."""
    table = ExperimentTable(
        experiment_id="Ablation (window reserve)",
        title="MPC with Equation 3's whole-window reserve vs per-kernel "
        "constraints, over Turbo Core",
        headers=["Benchmark", "E% (reserve)", "E% (per-kernel)",
                 "Speedup (reserve)", "Speedup (per-kernel)"],
    )
    for name, row in _rows(ctx, "no_reserve", window_reserve=False).items():
        table.add_row(name, *[round(v, 3) for v in row])
    return table


def ablation_overhead_hiding(ctx: ExperimentContext) -> ExperimentTable:
    """Worst-case (back-to-back kernels) vs CPU-phase-hidden overheads."""
    hidden_sim = hidden_simulator(ctx)
    table = ExperimentTable(
        experiment_id="Ablation (overhead hiding)",
        title="MPC performance overhead with back-to-back kernels vs "
        "2 ms CPU phases hiding the optimizer (Section VI-E)",
        headers=[
            "Benchmark",
            "Perf overhead, worst case (%)",
            "Perf overhead, hidden (%)",
            "Speedup, worst case",
            "Speedup, hidden",
        ],
    )
    for name in _PHASE_SENSITIVE:
        turbo = ctx.turbo(name)
        worst = ctx.mpc(name)
        hidden = ctx.mpc_variant(name, "hidden", simulator=hidden_sim)
        table.add_row(
            name,
            round(100.0 * worst.overhead_time_s / turbo.total_time_s, 3),
            round(100.0 * hidden.overhead_time_s / turbo.total_time_s, 3),
            round(speedup(worst, turbo), 3),
            round(speedup(hidden, turbo), 3),
        )
    return table


def design_ablation_summary(ctx: ExperimentContext) -> Dict[str, float]:
    """Aggregate deltas: mechanism-on minus mechanism-off."""
    order = _rows(ctx, "no_order", use_search_order=False)
    reserve = _rows(ctx, "no_reserve", window_reserve=False)
    return {
        "search_order_speedup_gain": geomean(
            row[2] / row[3] for row in order.values()
        ),
        "window_reserve_speedup_gain": geomean(
            row[2] / row[3] for row in reserve.values()
        ),
        "search_order_energy_gain_pct": mean(
            row[0] - row[1] for row in order.values()
        ),
        "window_reserve_energy_gain_pct": mean(
            row[0] - row[1] for row in reserve.values()
        ),
    }
