"""Figure 10: GPU-rail energy savings over AMD Turbo Core.

Chip-wide savings are dominated by the CPU plane (Turbo Core busy-waits
the CPU at a high P-state); this figure isolates the GPU rail — GPU
cores plus NB, including the GPU's idle-leakage energy while the
optimizer runs.  Shape targets: lbm posts the largest GPU savings (its
"peak" kernels are both faster and cheaper below 8 CUs); most other
benchmarks save a moderate single-to-double-digit percentage; MPC beats
PPK on average while also being faster.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import gpu_energy_savings_pct, mean

__all__ = ["fig10", "fig10_summary"]


def fig10(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 10: GPU energy savings over Turbo Core."""
    table = ExperimentTable(
        experiment_id="Figure 10",
        title="GPU(+NB) energy savings over AMD Turbo Core",
        headers=[
            "Benchmark",
            "PPK GPU energy savings (%)",
            "MPC GPU energy savings (%)",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        table.add_row(
            name,
            round(gpu_energy_savings_pct(ctx.ppk(name), turbo), 2),
            round(gpu_energy_savings_pct(ctx.mpc(name), turbo), 2),
        )
    return table


def fig10_summary(ctx: ExperimentContext) -> dict:
    """Aggregate GPU-energy savings, plus the CPU/GPU savings split.

    The paper attributes 75% of MPC's chip-wide savings to the CPU and
    25% to the GPU; the split here is computed the same way (component
    energy saved as a fraction of total energy saved).
    """
    gpu_savings = []
    cpu_saved_j = 0.0
    gpu_saved_j = 0.0
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc = ctx.mpc(name)
        gpu_savings.append(gpu_energy_savings_pct(mpc, turbo))
        cpu_saved_j += turbo.cpu_energy_j - mpc.cpu_energy_j
        gpu_saved_j += turbo.gpu_energy_j - mpc.gpu_energy_j
    total_saved = cpu_saved_j + gpu_saved_j
    return {
        "mpc_gpu_energy_savings_pct": mean(gpu_savings),
        "cpu_share_of_savings_pct": 100.0 * cpu_saved_j / total_saved,
        "gpu_share_of_savings_pct": 100.0 * gpu_saved_j / total_saved,
    }
