"""Figure 9: MPC energy savings and speedup relative to PPK.

Both schemes use the Random Forest predictor and include their
optimization overheads.  Shape targets: near-zero deltas on the regular
benchmarks; simultaneous energy savings *and* speedup for most of the
12 irregular ones (the paper's aggregate: 6.6% energy, 9.6% speedup).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup

__all__ = ["fig9", "fig9_summary"]


def fig9(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 9: MPC vs PPK per benchmark."""
    table = ExperimentTable(
        experiment_id="Figure 9",
        title="MPC energy savings and speedup over PPK "
        "(both with Random Forest, overheads included)",
        headers=["Benchmark", "Energy savings vs PPK (%)", "Speedup vs PPK"],
    )
    for name in ctx.benchmark_names:
        ppk = ctx.ppk(name)
        mpc = ctx.mpc(name)
        table.add_row(
            name,
            round(energy_savings_pct(mpc, ppk), 2),
            round(speedup(mpc, ppk), 3),
        )
    return table


def fig9_summary(ctx: ExperimentContext) -> dict:
    """Aggregate MPC-vs-PPK numbers.

    Returns:
        Mean energy savings (%) and geomean speedup of MPC over PPK,
        plus the same aggregates restricted to the irregular benchmarks.
    """
    savings, speeds = [], []
    irr_savings, irr_speeds = [], []
    for name in ctx.benchmark_names:
        ppk = ctx.ppk(name)
        mpc = ctx.mpc(name)
        s = energy_savings_pct(mpc, ppk)
        v = speedup(mpc, ppk)
        savings.append(s)
        speeds.append(v)
        if not ctx.app(name).category.is_regular:
            irr_savings.append(s)
            irr_speeds.append(v)
    return {
        "energy_savings_pct": mean(savings),
        "speedup": geomean(speeds),
        "irregular_energy_savings_pct": mean(irr_savings),
        "irregular_speedup": geomean(irr_speeds),
    }
