"""Generate EXPERIMENTS.md: paper-vs-measured for every table/figure.

``python -m repro.experiments.report`` runs every experiment against a
shared context and writes a markdown report recording, per table and
figure, what the paper showed, what this reproduction measures, and the
shape checks that the benchmark harness enforces.
"""

from __future__ import annotations

import io
from typing import Dict, Optional

from repro.experiments import (
    ablation_horizon,
    fig8_mpc_vs_turbo,
    fig9_mpc_vs_ppk,
    fig10_gpu_energy,
    fig11_amortization,
    fig12_theoretical_limit,
    fig13_prediction_error,
    fig14_overheads,
    fig15_horizon,
    headline,
)
from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.ml.predictors import evaluate_predictor
from repro.workloads.suites import all_benchmarks

__all__ = ["PAPER_NOTES", "generate_report", "write_report"]

#: What the paper reports for each experiment, for side-by-side reading.
PAPER_NOTES: Dict[str, str] = {
    "table1": "Software-visible CPU/NB/GPU DVFS states of the A10-7850K; "
    "reproduced verbatim as model constants.",
    "table2": "Execution patterns of Spmv (A10B10C10), kmeans (AB20) and "
    "hybridsort (ABCDEF1..F9G); reproduced verbatim.",
    "fig2": "Four kernel scaling classes: compute scales ~4x with CUs and "
    "ignores NB; memory saturates from NB2 and scales ~2.4x with CUs; "
    "peak kernels are fastest below 8 CUs; unscalable kernels are flat "
    "with their energy optimum at the smallest configuration.",
    "fig3": "Spmv steps high-to-low, kmeans low-to-high, hybridsort "
    "bounces across kernels and inputs.",
    "fig4": "With perfect knowledge, PPK matches TO on regular benchmarks "
    "and loses up to 48% energy / 46% performance on irregular ones.",
    "table3": "The eight GPU performance counters selected by correlation "
    "clustering; reproduced verbatim.",
    "table4": "15 benchmarks across four pattern categories.",
    "fig7": "Search order (3,2,1,6,5,4) and per-kernel optimization "
    "windows for the worked example; reproduced exactly.",
    "fig8": "MPC: 24.8% energy savings at 1.8% performance loss over "
    "Turbo Core (overheads included); srad is the worst case (-15.7%).",
    "fig9": "MPC vs PPK: 6.6% chip-wide energy savings while improving "
    "performance 9.6%; near-zero deltas on regular benchmarks.",
    "fig10": "GPU-rail savings: 51% for lbm (peak kernels), 3-20% for "
    "most others, ~10% overall; chip-wide savings split 75% CPU / 25% GPU.",
    "fig11": "Non-negligible gains after one re-execution; most of the "
    "steady-state gain after ten.",
    "fig12": "Idealized MPC captures 92% of TO's energy savings and 93% "
    "of its performance gain; slight losses for EigenValue, mis, Spmv.",
    "fig13": "Results only mildly sensitive to prediction accuracy: "
    "Err_15%_10%/Err_5%/Err_0% save 27-28% vs RF's 25%, performance "
    "within ~3 points.",
    "fig14": "Average overhead 0.15% energy / 0.3% performance; maximum "
    "0.53% / 1.2% (Spmv).",
    "fig15": "Long-kernel benchmarks (NBody, lbm, EigenValue, XSBench) "
    "explore the full horizon; short-kernel benchmarks shrink it sharply.",
    "headline": "24.8% energy / -1.8% perf vs Turbo Core; 6.6% energy / "
    "+9.6% perf vs PPK.",
    "ablation": "Full-horizon MPC saves only ~2.6% more energy than "
    "adaptive when overheads are ignored, and collapses to 15.4% savings "
    "at -12.8% performance once they are charged.",
    "ablation_search_order": "(reproduction-specific) isolates the "
    "Section IV-A1a above/below-target window ordering.",
    "ablation_window_reserve": "(reproduction-specific) isolates this "
    "reproduction's whole-window fail-safe reserve, our realization of "
    "Equation 3's window-spanning constraint.",
    "ablation_overhead_hiding": "Section VI-E: 'kernels may be separated "
    "by CPU phases with an available CPU, which can hide the MPC "
    "overheads' — with 2 ms CPU phases the wall-clock overhead vanishes.",
}

#: Known deviations worth flagging in the report.
DEVIATIONS = """\
## Known deviations

* **Magnitudes, not shapes.**  The substrate is an analytical APU model,
  so absolute energies/times differ from the authors' silicon; every
  comparison below is relative, policy-vs-policy on identical ground
  truth.
* **MPC-vs-PPK gap attenuated.**  The direction reproduces (MPC is
  faster than PPK on every irregular benchmark while matching its
  energy), but our PPK loses less than the paper's 8-26% — the tracker
  feedback recovers mispredictions faster on the modelled workloads.
* **CPU/GPU savings split** lands near 90/10 rather than 75/25: the
  modelled Turbo Core busy-waits the CPU at P1, which our MPC fully
  reclaims, while the GPU-side margins are thinner than on real silicon.
* **Adaptive-horizon budget refinement.**  The paper's H_i formula
  compares elapsed time against a uniform i*T_total/N baseline; under
  non-uniform launch times that misreads legitimate, tracker-sanctioned
  slack spending as overhead debt and pins H_i to zero.  We weight the
  baseline by max(time share, instruction share), renormalized to
  T_total (see repro/core/horizon.py).
* **Whole-window reserve.**  Equation 3 constrains the cumulative
  throughput through the window's end; we realize this by reserving
  every undecided window member at its fail-safe estimate, which is what
  lets MPC both guard against upcoming low-throughput phases and borrow
  slack from upcoming high-throughput ones.
* **Hill climbing sweeps knobs to a fixpoint** (bounded passes) rather
  than once: knob interactions (NB x DPM) otherwise strand the search in
  local optima the paper's results don't exhibit.
"""


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def _summary_lines(ctx: ExperimentContext, key: str) -> str:
    """Extra aggregate lines for experiments that have them."""
    out = io.StringIO()
    if key == "fig8":
        s = fig8_mpc_vs_turbo.fig8_summary(ctx)
        out.write(
            f"Measured: MPC saves {_fmt(s['mpc_energy_savings_pct'])}% energy at "
            f"{_fmt(100 * (1 - s['mpc_speedup']))}% performance loss "
            f"(PPK: {_fmt(s['ppk_energy_savings_pct'])}% / "
            f"{_fmt(100 * (1 - s['ppk_speedup']))}%).\n"
        )
    elif key == "fig9":
        s = fig9_mpc_vs_ppk.fig9_summary(ctx)
        out.write(
            f"Measured: MPC vs PPK {_fmt(s['energy_savings_pct'])}% energy, "
            f"{_fmt(100 * (s['speedup'] - 1))}% speedup "
            f"(irregular only: {_fmt(s['irregular_energy_savings_pct'])}% / "
            f"{_fmt(100 * (s['irregular_speedup'] - 1))}%).\n"
        )
    elif key == "fig10":
        s = fig10_gpu_energy.fig10_summary(ctx)
        out.write(
            f"Measured: mean MPC GPU savings {_fmt(s['mpc_gpu_energy_savings_pct'])}%; "
            f"savings split {_fmt(s['cpu_share_of_savings_pct'])}% CPU / "
            f"{_fmt(s['gpu_share_of_savings_pct'])}% GPU.\n"
        )
    elif key == "fig11":
        s = fig11_amortization.fig11_summary(ctx)
        for k, v in s.items():
            out.write(
                f"Measured x{k}: {_fmt(v['energy_savings_pct'])}% energy, "
                f"{v['speedup']:.3f}x vs PPK.\n"
            )
    elif key == "fig12":
        s = fig12_theoretical_limit.fig12_summary(ctx)
        out.write(
            f"Measured: idealized MPC captures {100 * s['energy_capture_ratio']:.0f}% "
            f"of TO's energy savings "
            f"({_fmt(s['mpc_energy_savings_pct'])}% vs {_fmt(s['to_energy_savings_pct'])}%).\n"
        )
    elif key == "fig13":
        s = fig13_prediction_error.fig13_summary(ctx)
        for label, v in s.items():
            out.write(
                f"Measured {label}: {_fmt(v['energy_savings_pct'])}% energy, "
                f"{v['speedup']:.3f}x.\n"
            )
    elif key == "fig14":
        s = fig14_overheads.fig14_summary(ctx)
        out.write(
            f"Measured: mean {s['mean_energy_overhead_pct']:.2f}% energy / "
            f"{s['mean_perf_overhead_pct']:.2f}% performance overhead; max "
            f"{s['max_energy_overhead_pct']:.2f}% / {s['max_perf_overhead_pct']:.2f}%.\n"
        )
    elif key == "headline":
        s = headline.headline_numbers(ctx)
        for metric, value in s.items():
            out.write(f"Measured {metric}: {_fmt(value)}\n")
    elif key == "ablation":
        s = ablation_horizon.ablation_summary(ctx)
        out.write(
            f"Measured: adaptive {_fmt(s['adaptive_energy_savings_pct'])}% / "
            f"{s['adaptive_speedup']:.3f}x vs full-horizon "
            f"{_fmt(s['full_energy_savings_pct'])}% / {s['full_speedup']:.3f}x.\n"
        )
    return out.getvalue()


def generate_report(ctx: Optional[ExperimentContext] = None) -> str:
    """Run every experiment and render the markdown report."""
    ctx = ctx if ctx is not None else ExperimentContext()
    if ctx.engine is not None:
        from repro.engine.matrix import requests_for

        ctx.engine.prefetch(ctx, requests_for(ALL_EXPERIMENTS, ctx))

    out = io.StringIO()
    out.write("# EXPERIMENTS — paper vs reproduction\n\n")
    out.write(
        "Regenerate with `python -m repro.experiments.report` (or run the\n"
        "benchmark harness: `pytest benchmarks/ --benchmark-only`).  All\n"
        "policies run on the modelled APU of DESIGN.md; comparisons are\n"
        "relative and the *shape* of each result is what is reproduced.\n\n"
    )

    kernels = [k for app in all_benchmarks() for k in app.unique_kernels]
    time_mape, power_mape = evaluate_predictor(ctx.predictor, kernels, apu=ctx.apu)
    out.write(
        "## Prediction model (Section VI-D)\n\n"
        "Paper: Random Forest MAPE 25% (performance) / 12% (power).\n"
        f"Measured: {time_mape:.1f}% / {power_mape:.1f}% over the 15 "
        "benchmarks' kernels x 336 configurations (out-of-sample; the\n"
        "power model of the substrate is smoother than real silicon,\n"
        "hence the lower power error).\n\n"
    )

    for key, experiment in ALL_EXPERIMENTS.items():
        table = experiment(ctx)
        out.write(f"## {table.experiment_id}: {table.title}\n\n")
        note = PAPER_NOTES.get(key)
        if note:
            out.write(f"Paper: {note}\n\n")
        summary = _summary_lines(ctx, key)
        if summary:
            out.write(summary + "\n")
        out.write("```\n")
        out.write(table.format())
        out.write("\n```\n\n")

    out.write(DEVIATIONS)
    return out.getvalue()


def write_report(path: str = "EXPERIMENTS.md",
                 ctx: Optional[ExperimentContext] = None) -> str:
    """Generate the report and write it to ``path``."""
    content = generate_report(ctx)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path


if __name__ == "__main__":
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    print(f"writing {write_report(target)}")
