"""Shared infrastructure for the per-figure experiment modules.

Most figures compare the same handful of policy runs over the same 15
benchmarks, so :class:`ExperimentContext` runs each (benchmark, policy)
pair once and caches the result.  The canonical run variants are:

* ``turbo``      — AMD Turbo Core (the normalization baseline).
* ``ppk``        — PPK with the Random Forest predictor, overheads charged.
* ``ppk_oracle`` — PPK with perfect prediction, no overheads (Figure 4).
* ``mpc_first``  — the MPC framework's first (profiling) invocation.
* ``mpc``        — MPC steady state: invocation after profiling, adaptive
  horizon, Random Forest predictions, overheads charged (Figures 8-10).
* ``mpc_full``   — MPC with full horizon, overheads charged (Section VI-E).
* ``mpc_ideal``  — MPC with perfect prediction, full horizon, no
  overheads (Figure 12).
* ``to``         — the Theoretically Optimal plan (Figures 4 and 12).

All variants execute through the streaming runtime layer: the compute
bodies in :mod:`repro.engine.variants` host each policy in a
:class:`~repro.runtime.session.SessionRuntime` built by
``Simulator.session`` (MPC pairs via
:func:`~repro.runtime.session.invocation_pair`), so cached experiment
results are byte-identical to what the streaming drivers produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.variants import RunKey, RunRequest, VARIANTS, produced_keys
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.predictors import (
    OraclePredictor,
    PerfPowerPredictor,
    RandomForestPredictor,
    train_predictor,
)
from repro.obs import Instrumentation, or_noop
from repro.sim.simulator import Simulator
from repro.sim.trace import RunResult
from repro.workloads.app import Application
from repro.workloads.generator import training_population
from repro.workloads.suites import BENCHMARK_NAMES, benchmark

__all__ = ["ExperimentTable", "ExperimentContext", "default_context"]

#: Default on-disk cache for the trained Random Forest.
DEFAULT_CACHE_DIR = ".cache"

#: Mirrors the defaults of :func:`repro.ml.predictors.train_predictor`;
#: part of the cache identity of the lazily trained default predictor.
_DEFAULT_RF_PARAMS = (
    ("population", 192),
    ("n_estimators", 16),
    ("max_depth", 16),
    ("max_features", 0.6),
    ("seed", 5),
    ("revision", "v6"),
)

_DEFAULT_POPULATION_KEYS: Optional[List[str]] = None


def _default_population_keys() -> List[str]:
    """Kernel keys of the default training population (memoized)."""
    global _DEFAULT_POPULATION_KEYS
    if _DEFAULT_POPULATION_KEYS is None:
        _DEFAULT_POPULATION_KEYS = sorted(
            spec.key for spec in training_population(192)
        )
    return _DEFAULT_POPULATION_KEYS


@dataclass
class ExperimentTable:
    """A reproduced table/figure: headers plus printable rows.

    Attributes:
        experiment_id: The paper's identifier, e.g. ``"Figure 8"``.
        title: What the table shows.
        headers: Column names.
        rows: One list of cell values per row.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row width {len(cells)} != header width {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[object]:
        """All values of one named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_for(self, key: object) -> List[object]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r}")

    def format(self) -> str:
        """Render as an aligned text table."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in table) for i in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


class ExperimentContext:
    """Caches policy runs shared by the experiment modules.

    Every run variant is described by an
    :class:`~repro.engine.variants.RunRequest` and resolved through
    :meth:`_run`: first against the in-memory store, then (when an
    engine is attached) against the engine's content-addressed disk
    cache, and only then computed — by this process, or by the engine's
    worker pool during a :meth:`~repro.engine.core.ExperimentEngine.prefetch`.

    Args:
        benchmark_names: Benchmarks to evaluate (defaults to all 15).
        simulator: The execution simulator (APU + overhead model).
        predictor: The Random Forest predictor; trained (or loaded from
            ``cache_dir``) on first use when not supplied.
        cache_dir: On-disk cache directory for the trained forest.
        alpha: Adaptive-horizon performance-penalty bound.
        engine: Optional :class:`~repro.engine.core.ExperimentEngine`
            providing the result cache and parallel prefetching.
        obs: Optional instrumentation threaded into every policy run
            computed through this context (defaults to the no-op).
            Kept on the context — never on the simulator — so the
            fingerprinted cache-key material is unchanged by tracing.
    """

    def __init__(
        self,
        benchmark_names: Optional[Sequence[str]] = None,
        simulator: Optional[Simulator] = None,
        predictor: Optional[RandomForestPredictor] = None,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        alpha: float = 0.05,
        engine: Optional[Any] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.benchmark_names: List[str] = list(
            benchmark_names if benchmark_names is not None else BENCHMARK_NAMES
        )
        self.sim = simulator if simulator is not None else Simulator()
        self.space = ConfigSpace()
        self.alpha = alpha
        self.engine = engine
        self.obs = or_noop(obs)
        self._cache_dir = cache_dir
        self._predictor = predictor
        self._default_predictor = predictor is None
        self._apps: Dict[str, Application] = {}
        self._runs: Dict[RunKey, RunResult] = {}

    # ----- building blocks -----------------------------------------------------

    @property
    def apu(self) -> APUModel:
        """The ground-truth hardware model."""
        return self.sim.apu

    @property
    def predictor(self) -> PerfPowerPredictor:
        """The (lazily trained) Random Forest predictor."""
        if self._predictor is None:
            self._predictor = train_predictor(
                apu=self.apu, cache_dir=self._cache_dir
            )
        return self._predictor

    @predictor.setter
    def predictor(self, value: PerfPowerPredictor) -> None:
        self._predictor = value
        self._default_predictor = value is None

    def predictor_fingerprint(self) -> Any:
        """Cache-key material identifying the context's predictor.

        For the default (lazily trained) Random Forest this is derived
        from the training parameters and the APU being characterized —
        *without* forcing the expensive training, so a warm cache can
        satisfy predictor-backed runs with no model in memory.  An
        explicitly supplied predictor is described structurally.
        """
        if self._default_predictor:
            return [
                "default-rf",
                dict(_DEFAULT_RF_PARAMS),
                _default_population_keys(),
                len(self.space),
                self.apu,
            ]
        return ["predictor", self.predictor]

    def app(self, name: str) -> Application:
        """The benchmark application, built once."""
        if name not in self._apps:
            self._apps[name] = benchmark(name)
        return self._apps[name]

    def oracle(self, name: str) -> OraclePredictor:
        """A perfect predictor restricted to one benchmark's kernels."""
        return OraclePredictor(self.apu, self.app(name).unique_kernels)

    def target_throughput(self, name: str) -> float:
        """The baseline (Turbo Core) kernel throughput of a benchmark."""
        turbo = self.turbo(name)
        return turbo.instructions / turbo.kernel_time_s

    # ----- cached runs -----------------------------------------------------------

    def _run(self, request: RunRequest) -> Dict[RunKey, RunResult]:
        """Resolve a request: memory, then engine cache, then compute."""
        keys = produced_keys(request)
        if all(key in self._runs for key in keys):
            return {key: self._runs[key] for key in keys}
        if self.engine is not None:
            loaded = self.engine.load_request(self, request)
            if loaded is not None:
                self._runs.update(loaded)
                return loaded
        computed = VARIANTS[request.variant].compute(self, request)
        self._runs.update(computed)
        if self.engine is not None:
            self.engine.store_request(self, request, computed)
        return computed

    def _run_one(self, request: RunRequest, key: RunKey) -> RunResult:
        return self._run(request)[key]

    def turbo(self, name: str) -> RunResult:
        """The Turbo Core baseline run."""
        return self._run_one(RunRequest(name, "turbo"), (name, "turbo"))

    def ppk(self, name: str) -> RunResult:
        """PPK with Random Forest predictions, overheads charged."""
        return self._run_one(RunRequest(name, "ppk"), (name, "ppk"))

    def ppk_oracle(self, name: str) -> RunResult:
        """PPK with perfect per-kernel knowledge, no overheads (Fig. 4)."""
        return self._run_one(
            RunRequest(name, "ppk_oracle"), (name, "ppk_oracle")
        )

    def _mpc_request(self, name: str, *, adaptive: bool) -> RunRequest:
        variant = "mpc_pair" if adaptive else "mpc_pair_full"
        return RunRequest(name, variant, (("alpha", self.alpha),))

    def mpc(self, name: str) -> RunResult:
        """MPC steady state: adaptive horizon, RF, overheads charged."""
        return self._run_one(
            self._mpc_request(name, adaptive=True), (name, "mpc")
        )

    def mpc_first(self, name: str) -> RunResult:
        """The profiling (first) invocation of the MPC framework."""
        return self._run_one(
            self._mpc_request(name, adaptive=True), (name, "mpc_first")
        )

    def mpc_full_horizon(self, name: str) -> RunResult:
        """MPC steady state with the full (non-adaptive) horizon."""
        return self._run_one(
            self._mpc_request(name, adaptive=False), (name, "mpc_full")
        )

    def mpc_ideal(self, name: str) -> RunResult:
        """MPC with perfect prediction, full horizon, no overheads."""
        return self._run_one(RunRequest(name, "mpc_ideal"), (name, "mpc_ideal"))

    def mpc_variant(self, name: str, tag: str, *,
                    simulator: Optional[Simulator] = None,
                    **manager_kwargs) -> RunResult:
        """MPC steady state with arbitrary manager options (ablations).

        Args:
            name: Benchmark name.
            tag: Cache key suffix distinguishing the variant.
            simulator: Optional alternative simulator (e.g. one with
                CPU-phase overhead hiding); defaults to the shared one.
            **manager_kwargs: Extra :class:`MPCPowerManager` arguments
                (``use_search_order``, ``window_reserve``, ``alpha``...).

        Returns:
            The steady-state run of the variant.
        """
        request = RunRequest(
            name,
            "mpc_variant",
            (
                ("kwargs", tuple(sorted(manager_kwargs.items()))),
                ("simulator", simulator),
                ("tag", tag),
            ),
        )
        return self._run_one(request, (name, "mpc_variant", tag))

    def mpc_with_predictor(self, name: str, predictor: PerfPowerPredictor,
                           tag: str) -> RunResult:
        """MPC steady state under an arbitrary predictor (Figure 13).

        Full horizon and no overhead charging, matching the paper's
        setup for the prediction-accuracy study.
        """
        # The context's own predictor is referenced symbolically so the
        # cache key stays computable without training, and so worker
        # processes resolve it against their local copy.
        shipped = None if predictor is self._predictor else predictor
        request = RunRequest(
            name, "mpc_pred", (("predictor", shipped), ("tag", tag))
        )
        return self._run_one(request, (name, "mpc_pred", tag))

    def mpc_error_model(self, name: str, time_error: float,
                        power_error: float) -> RunResult:
        """MPC under a half-normal synthetic-error oracle (Figure 13)."""
        from repro.engine.variants import error_model_tag

        request = RunRequest(
            name,
            "mpc_error",
            (("power_error", power_error), ("time_error", time_error)),
        )
        return self._run_one(
            request, (name, "mpc_pred", error_model_tag(time_error, power_error))
        )

    def theoretically_optimal(self, name: str) -> RunResult:
        """The Theoretically Optimal plan, replayed with no overheads."""
        return self._run_one(RunRequest(name, "to"), (name, "to"))


_DEFAULT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """A process-wide shared context (used by benches and examples)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentContext()
    return _DEFAULT
