"""Shared infrastructure for the per-figure experiment modules.

Most figures compare the same handful of policy runs over the same 15
benchmarks, so :class:`ExperimentContext` runs each (benchmark, policy)
pair once and caches the result.  The canonical run variants are:

* ``turbo``      — AMD Turbo Core (the normalization baseline).
* ``ppk``        — PPK with the Random Forest predictor, overheads charged.
* ``ppk_oracle`` — PPK with perfect prediction, no overheads (Figure 4).
* ``mpc_first``  — the MPC framework's first (profiling) invocation.
* ``mpc``        — MPC steady state: invocation after profiling, adaptive
  horizon, Random Forest predictions, overheads charged (Figures 8-10).
* ``mpc_full``   — MPC with full horizon, overheads charged (Section VI-E).
* ``mpc_ideal``  — MPC with perfect prediction, full horizon, no
  overheads (Figure 12).
* ``to``         — the Theoretically Optimal plan (Figures 4 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.manager import MPCPowerManager
from repro.core.oracle import solve_theoretically_optimal
from repro.core.policies import PlannedPolicy, PPKPolicy
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.errors import SyntheticErrorPredictor
from repro.ml.predictors import (
    OraclePredictor,
    PerfPowerPredictor,
    RandomForestPredictor,
    train_predictor,
)
from repro.sim.simulator import OverheadModel, Simulator
from repro.sim.trace import RunResult
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application
from repro.workloads.suites import BENCHMARK_NAMES, benchmark

__all__ = ["ExperimentTable", "ExperimentContext", "default_context"]

#: Default on-disk cache for the trained Random Forest.
DEFAULT_CACHE_DIR = ".cache"


@dataclass
class ExperimentTable:
    """A reproduced table/figure: headers plus printable rows.

    Attributes:
        experiment_id: The paper's identifier, e.g. ``"Figure 8"``.
        title: What the table shows.
        headers: Column names.
        rows: One list of cell values per row.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row width {len(cells)} != header width {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[object]:
        """All values of one named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_for(self, key: object) -> List[object]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r}")

    def format(self) -> str:
        """Render as an aligned text table."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in table) for i in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


class ExperimentContext:
    """Caches policy runs shared by the experiment modules.

    Args:
        benchmark_names: Benchmarks to evaluate (defaults to all 15).
        simulator: The execution simulator (APU + overhead model).
        predictor: The Random Forest predictor; trained (or loaded from
            ``cache_dir``) on first use when not supplied.
        cache_dir: On-disk cache directory for the trained forest.
        alpha: Adaptive-horizon performance-penalty bound.
    """

    def __init__(
        self,
        benchmark_names: Optional[Sequence[str]] = None,
        simulator: Optional[Simulator] = None,
        predictor: Optional[RandomForestPredictor] = None,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        alpha: float = 0.05,
    ) -> None:
        self.benchmark_names: List[str] = list(
            benchmark_names if benchmark_names is not None else BENCHMARK_NAMES
        )
        self.sim = simulator if simulator is not None else Simulator()
        self.space = ConfigSpace()
        self.alpha = alpha
        self._cache_dir = cache_dir
        self._predictor = predictor
        self._apps: Dict[str, Application] = {}
        self._runs: Dict[tuple, RunResult] = {}

    # ----- building blocks -----------------------------------------------------

    @property
    def apu(self) -> APUModel:
        """The ground-truth hardware model."""
        return self.sim.apu

    @property
    def predictor(self) -> RandomForestPredictor:
        """The (lazily trained) Random Forest predictor."""
        if self._predictor is None:
            self._predictor = train_predictor(
                apu=self.apu, cache_dir=self._cache_dir
            )
        return self._predictor

    def app(self, name: str) -> Application:
        """The benchmark application, built once."""
        if name not in self._apps:
            self._apps[name] = benchmark(name)
        return self._apps[name]

    def oracle(self, name: str) -> OraclePredictor:
        """A perfect predictor restricted to one benchmark's kernels."""
        return OraclePredictor(self.apu, self.app(name).unique_kernels)

    def target_throughput(self, name: str) -> float:
        """The baseline (Turbo Core) kernel throughput of a benchmark."""
        turbo = self.turbo(name)
        return turbo.instructions / turbo.kernel_time_s

    # ----- cached runs -----------------------------------------------------------

    def _cached(self, key: tuple, build: Callable[[], RunResult]) -> RunResult:
        if key not in self._runs:
            self._runs[key] = build()
        return self._runs[key]

    def turbo(self, name: str) -> RunResult:
        """The Turbo Core baseline run."""
        return self._cached(
            (name, "turbo"),
            lambda: self.sim.run(self.app(name), TurboCorePolicy(tdp_w=self.apu.tdp_w)),
        )

    def ppk(self, name: str) -> RunResult:
        """PPK with Random Forest predictions, overheads charged."""
        def build() -> RunResult:
            policy = PPKPolicy(
                self.target_throughput(name), self.predictor, self.space
            )
            return self.sim.run(self.app(name), policy)
        return self._cached((name, "ppk"), build)

    def ppk_oracle(self, name: str) -> RunResult:
        """PPK with perfect per-kernel knowledge, no overheads (Fig. 4)."""
        def build() -> RunResult:
            policy = PPKPolicy(
                self.target_throughput(name), self.oracle(name), self.space
            )
            return self.sim.run(self.app(name), policy, charge_overhead=False)
        return self._cached((name, "ppk_oracle"), build)

    def _mpc_pair(self, name: str, *, adaptive: bool) -> None:
        manager = MPCPowerManager(
            self.target_throughput(name),
            self.predictor,
            self.space,
            alpha=self.alpha,
            adaptive_horizon=adaptive,
            overhead_model=self.sim.overhead,
        )
        app = self.app(name)
        suffix = "" if adaptive else "_full"
        first = self.sim.run(app, manager)
        steady = self.sim.run(app, manager)
        self._runs[(name, "mpc_first" + suffix)] = first
        self._runs[(name, "mpc" + suffix)] = steady

    def mpc(self, name: str) -> RunResult:
        """MPC steady state: adaptive horizon, RF, overheads charged."""
        key = (name, "mpc")
        if key not in self._runs:
            self._mpc_pair(name, adaptive=True)
        return self._runs[key]

    def mpc_first(self, name: str) -> RunResult:
        """The profiling (first) invocation of the MPC framework."""
        key = (name, "mpc_first")
        if key not in self._runs:
            self._mpc_pair(name, adaptive=True)
        return self._runs[key]

    def mpc_full_horizon(self, name: str) -> RunResult:
        """MPC steady state with the full (non-adaptive) horizon."""
        key = (name, "mpc_full")
        if key not in self._runs:
            self._mpc_pair(name, adaptive=False)
        return self._runs[key]

    def mpc_ideal(self, name: str) -> RunResult:
        """MPC with perfect prediction, full horizon, no overheads."""
        def build() -> RunResult:
            manager = MPCPowerManager(
                self.target_throughput(name),
                self.oracle(name),
                self.space,
                adaptive_horizon=False,
                overhead_model=self.sim.overhead,
            )
            app = self.app(name)
            self.sim.run(app, manager, charge_overhead=False)  # profiling
            return self.sim.run(app, manager, charge_overhead=False)
        return self._cached((name, "mpc_ideal"), build)

    def mpc_variant(self, name: str, tag: str, *,
                    simulator: Optional[Simulator] = None,
                    **manager_kwargs) -> RunResult:
        """MPC steady state with arbitrary manager options (ablations).

        Args:
            name: Benchmark name.
            tag: Cache key suffix distinguishing the variant.
            simulator: Optional alternative simulator (e.g. one with
                CPU-phase overhead hiding); defaults to the shared one.
            **manager_kwargs: Extra :class:`MPCPowerManager` arguments
                (``use_search_order``, ``window_reserve``, ``alpha``...).

        Returns:
            The steady-state run of the variant.
        """
        sim = simulator if simulator is not None else self.sim
        def build() -> RunResult:
            manager = MPCPowerManager(
                self.target_throughput(name),
                self.predictor,
                self.space,
                overhead_model=sim.overhead,
                **manager_kwargs,
            )
            app = self.app(name)
            sim.run(app, manager)
            return sim.run(app, manager)
        return self._cached((name, "mpc_variant", tag), build)

    def mpc_with_predictor(self, name: str, predictor: PerfPowerPredictor,
                           tag: str) -> RunResult:
        """MPC steady state under an arbitrary predictor (Figure 13).

        Full horizon and no overhead charging, matching the paper's
        setup for the prediction-accuracy study.
        """
        def build() -> RunResult:
            manager = MPCPowerManager(
                self.target_throughput(name),
                predictor,
                self.space,
                adaptive_horizon=False,
                overhead_model=self.sim.overhead,
            )
            app = self.app(name)
            self.sim.run(app, manager, charge_overhead=False)
            return self.sim.run(app, manager, charge_overhead=False)
        return self._cached((name, "mpc_pred", tag), build)

    def mpc_error_model(self, name: str, time_error: float,
                        power_error: float) -> RunResult:
        """MPC under a half-normal synthetic-error oracle (Figure 13)."""
        predictor = SyntheticErrorPredictor(
            self.oracle(name), time_error, power_error
        )
        tag = f"err_{time_error:g}_{power_error:g}"
        return self.mpc_with_predictor(name, predictor, tag)

    def theoretically_optimal(self, name: str) -> RunResult:
        """The Theoretically Optimal plan, replayed with no overheads."""
        def build() -> RunResult:
            plan = solve_theoretically_optimal(
                self.app(name), self.apu, self.target_throughput(name), self.space
            )
            policy = PlannedPolicy(plan.configs, name="TheoreticallyOptimal")
            return self.sim.run(self.app(name), policy, charge_overhead=False)
        return self._cached((name, "to"), build)


_DEFAULT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """A process-wide shared context (used by benches and examples)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentContext()
    return _DEFAULT
