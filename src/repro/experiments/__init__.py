"""Per-table/figure reproduction experiments.

Each module regenerates one table or figure of the paper from the
reproduced system; :mod:`~repro.experiments.runner` runs them all.  See
DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.common import (
    ExperimentContext,
    ExperimentTable,
    default_context,
)

__all__ = ["ExperimentContext", "ExperimentTable", "default_context"]
