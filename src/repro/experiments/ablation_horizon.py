"""Section VI-E ablation: adaptive horizon vs always-full horizon.

The paper reports that ignoring overheads, full-horizon MPC saves only
~2.6% more energy than the adaptive scheme — but once its (much larger)
overheads are charged, the full-horizon scheme degrades to 15.4% energy
savings at a 12.8% performance loss, versus 24.8% / 1.8% for the
adaptive scheme.  Shape target: charging overheads must flip the
comparison in the adaptive scheme's favour, with the gap concentrated
in the short-kernel benchmarks.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup

__all__ = ["ablation", "ablation_summary"]


def ablation(ctx: ExperimentContext) -> ExperimentTable:
    """Adaptive vs full-horizon MPC, overheads charged, per benchmark."""
    table = ExperimentTable(
        experiment_id="Ablation (VI-E)",
        title="Adaptive vs full-horizon MPC over Turbo Core "
        "(overheads included)",
        headers=[
            "Benchmark",
            "Adaptive E%",
            "Full-horizon E%",
            "Adaptive speedup",
            "Full-horizon speedup",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        adaptive = ctx.mpc(name)
        full = ctx.mpc_full_horizon(name)
        table.add_row(
            name,
            round(energy_savings_pct(adaptive, turbo), 2),
            round(energy_savings_pct(full, turbo), 2),
            round(speedup(adaptive, turbo), 3),
            round(speedup(full, turbo), 3),
        )
    return table


def ablation_summary(ctx: ExperimentContext) -> Dict[str, float]:
    """Aggregates of the adaptive-vs-full-horizon comparison."""
    a_sav, f_sav, a_spd, f_spd = [], [], [], []
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        a_sav.append(energy_savings_pct(ctx.mpc(name), turbo))
        f_sav.append(energy_savings_pct(ctx.mpc_full_horizon(name), turbo))
        a_spd.append(speedup(ctx.mpc(name), turbo))
        f_spd.append(speedup(ctx.mpc_full_horizon(name), turbo))
    return {
        "adaptive_energy_savings_pct": mean(a_sav),
        "full_energy_savings_pct": mean(f_sav),
        "adaptive_speedup": geomean(a_spd),
        "full_speedup": geomean(f_spd),
    }
