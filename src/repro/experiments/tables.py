"""Tables I-IV of the paper: DVFS states, patterns, counters, benchmarks.

These tables are definitional rather than measured; regenerating them
checks that the reproduction's constants and workload definitions match
what the paper states.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.hardware import dvfs
from repro.workloads.counters import COUNTER_NAMES
from repro.workloads.suites import TABLE_II_PATTERNS, all_benchmarks

__all__ = ["table1", "table2", "table3", "table4"]

_COUNTER_DESCRIPTIONS = {
    "GlobalWorkSize": "Global work-item size of the kernel",
    "MemUnitStalled": "Percentage of GPUTime the memory unit is stalled",
    "CacheHit": "Percentage of instructions that hit the data cache",
    "VFetchInsts": "Vector fetch instructions per work-item",
    "ScratchRegs": "Number of scratch registers used",
    "LDSBankConflict": "Percentage of GPUTime LDS is stalled by bank conflicts",
    "VALUInsts": "Vector ALU instructions per work-item",
    "FetchSize": "Total kB fetched from video memory",
}


def table1(ctx: ExperimentContext = None) -> ExperimentTable:
    """Table I: software-visible CPU, NB, and GPU DVFS states."""
    table = ExperimentTable(
        experiment_id="Table I",
        title="CPU, Northbridge and GPU DVFS states (AMD A10-7850K)",
        headers=["Domain", "State", "Voltage (V)", "Freq (GHz)", "Mem freq (MHz)"],
    )
    for name, state in dvfs.CPU_PSTATES.items():
        table.add_row("CPU", name, state.voltage, state.freq_ghz, "-")
    for name, state in dvfs.NB_PSTATES.items():
        table.add_row("NB", name, "-", state.freq_ghz, dvfs.NB_MEMORY_FREQ_MHZ[name])
    for name, state in dvfs.GPU_DPM_STATES.items():
        table.add_row("GPU", name, state.voltage, state.freq_ghz, "-")
    return table


def table2(ctx: ExperimentContext = None) -> ExperimentTable:
    """Table II: execution patterns of three irregular benchmarks."""
    table = ExperimentTable(
        experiment_id="Table II",
        title="Execution pattern of three irregular benchmarks",
        headers=["Benchmark", "Pattern (paper)", "Pattern (reproduced)", "Match"],
    )
    by_name = {app.name: app for app in all_benchmarks()}
    for name, expected in TABLE_II_PATTERNS.items():
        app = by_name[name]
        table.add_row(name, expected, app.pattern, app.pattern == expected)
    return table


def table3(ctx: ExperimentContext = None) -> ExperimentTable:
    """Table III: the eight selected GPU performance counters."""
    table = ExperimentTable(
        experiment_id="Table III",
        title="GPU performance counters used by the predictor",
        headers=["Name", "Description"],
    )
    for name in COUNTER_NAMES:
        table.add_row(name, _COUNTER_DESCRIPTIONS[name])
    return table


def table4(ctx: ExperimentContext = None) -> ExperimentTable:
    """Table IV: the 15 evaluation benchmarks and their patterns."""
    table = ExperimentTable(
        experiment_id="Table IV",
        title="Benchmarks with their execution pattern",
        headers=["Category", "Benchmark", "Suite", "Pattern", "Launches"],
    )
    for app in all_benchmarks():
        table.add_row(
            app.category.value, app.name, app.suite, app.pattern, len(app)
        )
    return table
