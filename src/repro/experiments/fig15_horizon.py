"""Figure 15: average adaptive horizon length per benchmark.

Reports MPC's mean horizon as a percentage of each application's total
kernel count N.  Shape targets: long-kernel benchmarks (NBody, lbm,
EigenValue, XSBench) afford large horizons; short-kernel benchmarks
(Spmv and the graph workloads) shrink the horizon sharply to bound
their overheads.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable

__all__ = ["fig15", "fig15_summary"]


def fig15(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 15: mean horizon as a % of kernel count."""
    table = ExperimentTable(
        experiment_id="Figure 15",
        title="Average MPC horizon length relative to the number of "
        "kernels (adaptive horizon, alpha = 0.05)",
        headers=["Benchmark", "N", "Mean horizon", "Horizon (% of N)"],
    )
    for name in ctx.benchmark_names:
        mpc = ctx.mpc(name)
        n = len(ctx.app(name))
        table.add_row(
            name,
            n,
            round(mpc.mean_horizon, 2),
            round(100.0 * mpc.mean_horizon / n, 1),
        )
    return table


def fig15_summary(ctx: ExperimentContext) -> Dict[str, float]:
    """Mean horizon percentage per benchmark, keyed by name."""
    return {
        name: 100.0 * ctx.mpc(name).mean_horizon / len(ctx.app(name))
        for name in ctx.benchmark_names
    }
