"""Figure 13: sensitivity of MPC to prediction-model accuracy.

Compares MPC driven by the trained Random Forest against MPC driven by
synthetic predictors whose errors follow a half-normal distribution with
mean absolute errors matching recently published models:

* ``Err_15%_10%`` — 15% performance / 10% power (Wu et al., HPCA'15),
* ``Err_5%``      — 5% / 5% (Paul et al., ISCA'15),
* ``Err_0%``      — a perfect model.

All variants run a full horizon with no overheads, as in the paper.
Shape target: the energy/performance results are only mildly sensitive
to prediction accuracy, because MPC evaluates the model sparingly and
the runtime-feedback headroom corrects for mispredictions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup

__all__ = ["ERROR_MODELS", "fig13", "fig13_summary"]

#: (label, time error, power error) for the synthetic predictors.
ERROR_MODELS: Tuple[Tuple[str, float, float], ...] = (
    ("Err_15%_10%", 0.15, 0.10),
    ("Err_5%", 0.05, 0.05),
    ("Err_0%", 0.0, 0.0),
)


def _variant_run(ctx: ExperimentContext, name: str, label: str):
    if label == "RF":
        return ctx.mpc_with_predictor(name, ctx.predictor, "rf_full")
    for model_label, time_err, power_err in ERROR_MODELS:
        if model_label == label:
            return ctx.mpc_error_model(name, time_err, power_err)
    raise KeyError(f"unknown predictor variant {label!r}")


def fig13(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 13 per benchmark and predictor variant."""
    labels = ["RF"] + [label for label, _, _ in ERROR_MODELS]
    table = ExperimentTable(
        experiment_id="Figure 13",
        title="Impact of prediction accuracy (full horizon, no overhead): "
        "energy savings and speedup over Turbo Core",
        headers=["Benchmark"]
        + [f"E% ({label})" for label in labels]
        + [f"Speedup ({label})" for label in labels],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        runs = [_variant_run(ctx, name, label) for label in labels]
        table.add_row(
            name,
            *[round(energy_savings_pct(r, turbo), 2) for r in runs],
            *[round(speedup(r, turbo), 3) for r in runs],
        )
    return table


def fig13_summary(ctx: ExperimentContext) -> Dict[str, Dict[str, float]]:
    """Aggregate savings/speedup per predictor variant."""
    labels = ["RF"] + [label for label, _, _ in ERROR_MODELS]
    out: Dict[str, Dict[str, float]] = {}
    for label in labels:
        savings: List[float] = []
        speeds: List[float] = []
        for name in ctx.benchmark_names:
            turbo = ctx.turbo(name)
            run = _variant_run(ctx, name, label)
            savings.append(energy_savings_pct(run, turbo))
            speeds.append(speedup(run, turbo))
        out[label] = {
            "energy_savings_pct": mean(savings),
            "speedup": geomean(speeds),
        }
    return out
