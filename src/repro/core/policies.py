"""Baseline power-management policies: fixed, planned, and PPK.

* :class:`FixedConfigPolicy` runs everything at one configuration.
* :class:`PlannedPolicy` replays a precomputed per-launch plan (used by
  the theoretically-optimal solver, which plans offline).
* :class:`PPKPolicy` is the paper's "Predict Previous Kernel" scheme —
  the stand-in for state-of-the-art history-based managers: it assumes
  the kernel that just finished will repeat next and picks the energy
  optimal configuration for it, with no knowledge of the future.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelPatternExtractor
from repro.core.tracker import PerformanceTracker
from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace, HardwareConfig
from repro.ml.predictors import PerfPowerPredictor
from repro.sim.policy import Decision, Observation, PowerPolicy
from repro.workloads.counters import CounterVector

__all__ = ["FixedConfigPolicy", "PlannedPolicy", "PPKPolicy"]


class FixedConfigPolicy(PowerPolicy):
    """Runs every kernel at one fixed configuration, with no overhead."""

    def __init__(self, config: HardwareConfig, name: str = "Fixed") -> None:
        self.config = config
        self.name = name

    def decide(self, index: int) -> Decision:
        return Decision(config=self.config)

    def observe(self, observation: Observation) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}  # stateless: the config is a constructor argument

    def restore(self, payload: Dict[str, Any]) -> None:
        pass


class PlannedPolicy(PowerPolicy):
    """Replays a precomputed per-launch configuration plan.

    Used by offline solvers (e.g. the theoretically-optimal scheme,
    which by definition incurs no runtime overhead).

    Args:
        plan: One configuration per launch, in execution order.
        name: Policy name for traces.
    """

    def __init__(self, plan: Sequence[HardwareConfig],
                 name: str = "Planned") -> None:
        if not plan:
            raise ValueError("plan must contain at least one configuration")
        self.plan: List[HardwareConfig] = list(plan)
        self.name = name

    def decide(self, index: int) -> Decision:
        if index >= len(self.plan):
            raise IndexError(
                f"plan has {len(self.plan)} entries but launch {index} requested"
            )
        return Decision(config=self.plan[index])

    def observe(self, observation: Observation) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}  # stateless: the plan is a constructor argument

    def restore(self, payload: Dict[str, Any]) -> None:
        pass


class PPKPolicy(PowerPolicy):
    """Predict Previous Kernel: history-based energy optimization.

    At every kernel boundary PPK optimizes the upcoming kernel assuming
    it behaves exactly like the one that just finished (Equation 2),
    subject to the cumulative throughput staying at or above the target.
    The very first kernel runs at the fail-safe configuration because no
    performance counters exist yet.

    Args:
        target_throughput: The performance target (Turbo Core's I/T).
        predictor: Performance/power model (Random Forest for the
            realistic scheme; the oracle for the Figure-4 limit study).
        space: Searchable configuration space.
        fail_safe: Fallback/startup configuration.
        use_matrix: Decision-core path selector, passed through to the
            hill-climb optimizer (``False`` forces the scalar path).
    """

    name = "PPK"

    def __init__(
        self,
        target_throughput: float,
        predictor: PerfPowerPredictor,
        space: Optional[ConfigSpace] = None,
        fail_safe: HardwareConfig = FAILSAFE_CONFIG,
        use_matrix: bool = True,
    ) -> None:
        self.space = space if space is not None else ConfigSpace()
        self.optimizer = GreedyHillClimbOptimizer(
            self.space, predictor, fail_safe, use_matrix=use_matrix
        )
        self.tracker = PerformanceTracker(target_throughput)
        self.extractor = KernelPatternExtractor()
        self._fail_safe = self.optimizer.fail_safe

    def begin_run(self) -> None:
        self.tracker.reset()
        self.extractor.end_run()

    def decide(self, index: int) -> Decision:
        record = self.extractor.last_record()
        if record is None:
            return Decision(config=self._fail_safe, fail_safe=True, horizon=0)
        result = self.optimizer.optimize_kernel(record, self.tracker)
        return Decision(
            config=result.config,
            model_evaluations=result.evaluations,
            horizon=1,
            fail_safe=result.fail_safe,
        )

    def prefetch_counters(self, index: int) -> Sequence[CounterVector]:
        """PPK's next decision always sweeps the previous kernel."""
        record = self.extractor.last_record()
        return (record.counters,) if record is not None else ()

    def observe(self, observation: Observation) -> None:
        self.tracker.update(
            observation.instructions, observation.measurement.time_s
        )
        self.extractor.observe(
            observation.counters,
            observation.instructions,
            observation.measurement.time_s,
            observation.measurement.gpu_power_w,
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "tracker": self.tracker.snapshot(),
            "extractor": self.extractor.snapshot(),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        self.tracker.restore(payload["tracker"])
        self.extractor.restore(payload["extractor"])
