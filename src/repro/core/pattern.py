"""Kernel pattern extractor (Section IV-A2).

GPGPU applications launch kernels in regular orders; the paper's
framework identifies kernels by a *signature* — each of the eight
Table-III counters binned as ``floor(log u)`` — and maintains an indexed
list of kernel records.  The extractor:

1. builds the kernel execution list over time,
2. identifies kernel signatures, and
3. passes expected future kernels (and their stored counters and
   instruction counts) to the optimizer.

On an application's first invocation the framework has no stored
knowledge; it runs PPK while this extractor records the execution order
("At this initial stage, our MPC framework simply runs PPK while it
dynamically extracts the pattern").  On later invocations the recorded
order *is* the prediction of the future, and per-signature stores are
refreshed with counter feedback after every launch (an exponential
moving average).

:func:`detect_period` implements the Totoni-style repetitive-pattern
detection used to recognize that behaviour has become periodic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.counters import CounterVector

__all__ = ["KernelRecord", "KernelPatternExtractor", "detect_period"]

#: Stored bytes per dissimilar kernel: 8 counters + time + power, as
#: double-precision values (the paper's storage-cost accounting).
BYTES_PER_RECORD = 80


def detect_period(sequence: Sequence, min_repeats: int = 2) -> Optional[int]:
    """Smallest period of a trailing repetitive pattern, if any.

    Args:
        sequence: Hashable items (kernel signatures) in execution order.
        min_repeats: How many complete repetitions are required before a
            period is accepted.

    Returns:
        The period length, or ``None`` when no period of at least
        ``min_repeats`` repetitions ends the sequence.
    """
    n = len(sequence)
    if n < min_repeats:
        return None
    for period in range(1, n // min_repeats + 1):
        tail = list(sequence[n - period:])
        repeats = 1
        pos = n - 2 * period
        while pos >= 0 and list(sequence[pos:pos + period]) == tail:
            repeats += 1
            pos -= period
        if repeats >= min_repeats:
            return period
    return None


@dataclass
class KernelRecord:
    """Stored knowledge about one dissimilar kernel.

    Attributes:
        signature: The log-binned counter signature identifying it.
        counters: Stored counters, refreshed by feedback after each
            launch of this kernel.
        instructions: Expected instruction count (EMA of observations).
        last_time_s: Most recently measured execution time.
        last_gpu_power_w: Most recently measured GPU-rail power.
        observations: How many times this kernel has been seen.
    """

    signature: Tuple[int, ...]
    counters: CounterVector
    instructions: float
    last_time_s: float = 0.0
    last_gpu_power_w: float = 0.0
    observations: int = 0


class KernelPatternExtractor:
    """Signature store + execution-order recorder + future predictor.

    Args:
        feedback_weight: Weight of a fresh observation in the stored
            counter/instruction EMA update.
    """

    def __init__(self, feedback_weight: float = 0.5) -> None:
        if not 0.0 < feedback_weight <= 1.0:
            raise ValueError("feedback_weight must be in (0, 1]")
        self.feedback_weight = feedback_weight
        self._records: Dict[Tuple[int, ...], KernelRecord] = {}
        self._current_run: List[Tuple[int, ...]] = []
        self._recorded_order: Optional[List[Tuple[int, ...]]] = None

    # ----- observation --------------------------------------------------------

    def observe(self, counters: CounterVector, instructions: float,
                time_s: float, gpu_power_w: float) -> KernelRecord:
        """Ingest telemetry of the launch that just completed.

        Returns:
            The (created or updated) record for the kernel.
        """
        signature = counters.signature()
        record = self._records.get(signature)
        if record is None:
            record = KernelRecord(
                signature=signature,
                counters=counters,
                instructions=instructions,
            )
            self._records[signature] = record
        else:
            w = self.feedback_weight
            record.counters = record.counters.blended_with(counters, w)
            record.instructions = (1 - w) * record.instructions + w * instructions
        record.last_time_s = time_s
        record.last_gpu_power_w = gpu_power_w
        record.observations += 1
        self._current_run.append(signature)
        return record

    def end_run(self) -> None:
        """Conclude the current application invocation.

        The first completed invocation's execution order becomes the
        stored profile used to predict future invocations.
        """
        if self._recorded_order is None and self._current_run:
            self._recorded_order = list(self._current_run)
        self._current_run = []

    # ----- queries -------------------------------------------------------------

    @property
    def has_profile(self) -> bool:
        """Whether a full execution order has been recorded."""
        return self._recorded_order is not None

    @property
    def num_records(self) -> int:
        """Number of dissimilar kernels stored."""
        return len(self._records)

    @property
    def storage_bytes(self) -> int:
        """Store size under the paper's 80-bytes-per-kernel accounting."""
        return BYTES_PER_RECORD * len(self._records)

    @property
    def recorded_order(self) -> Optional[List[Tuple[int, ...]]]:
        """The profiled execution order (signatures), if recorded."""
        if self._recorded_order is None:
            return None
        return list(self._recorded_order)

    def lookup(self, signature: Tuple[int, ...]) -> Optional[KernelRecord]:
        """The stored record for a signature, if any."""
        return self._records.get(signature)

    def last_record(self) -> Optional[KernelRecord]:
        """Record of the most recent launch in the current run."""
        if not self._current_run:
            return None
        return self._records.get(self._current_run[-1])

    def expected_record(self, index: int) -> Optional[KernelRecord]:
        """Predicted record for execution position ``index``.

        Predictions come from the recorded profile when one exists;
        otherwise from a detected repeating period of the current run's
        signature history; otherwise ``None`` (unknown future).
        """
        if self._recorded_order is not None:
            if 0 <= index < len(self._recorded_order):
                return self._records.get(self._recorded_order[index])
            return None
        period = detect_period(self._current_run)
        if period is None:
            return None
        seen = len(self._current_run)
        if index < seen:
            return self._records.get(self._current_run[index])
        offset = (index - (seen - period)) % period
        return self._records.get(self._current_run[seen - period + offset])

    def expected_sequence(self, start: int, length: int) -> List[Optional[KernelRecord]]:
        """Predicted records for positions ``start .. start+length-1``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return [self.expected_record(start + offset) for offset in range(length)]

    # ----- migration -----------------------------------------------------------

    def snapshot(self) -> dict:
        """The store, current run, and profile as a JSON-able dict.

        Records are serialized in insertion order so a restored store
        iterates identically to the original.
        """
        return {
            "records": [
                {
                    "signature": list(record.signature),
                    "counters": [float(v) for v in record.counters.as_array()],
                    "instructions": record.instructions,
                    "last_time_s": record.last_time_s,
                    "last_gpu_power_w": record.last_gpu_power_w,
                    "observations": record.observations,
                }
                for record in self._records.values()
            ],
            "current_run": [list(sig) for sig in self._current_run],
            "recorded_order": (
                None
                if self._recorded_order is None
                else [list(sig) for sig in self._recorded_order]
            ),
        }

    def restore(self, payload: dict) -> None:
        """Rebuild the store from :meth:`snapshot` output.

        ``feedback_weight`` is a constructor argument and is not part
        of the snapshot; restore onto an extractor built with the same
        arguments.
        """
        self._records = {}
        for entry in payload["records"]:
            signature = tuple(int(b) for b in entry["signature"])
            self._records[signature] = KernelRecord(
                signature=signature,
                counters=CounterVector.from_array(entry["counters"]),
                instructions=float(entry["instructions"]),
                last_time_s=float(entry["last_time_s"]),
                last_gpu_power_w=float(entry["last_gpu_power_w"]),
                observations=int(entry["observations"]),
            )
        self._current_run = [
            tuple(int(b) for b in sig) for sig in payload["current_run"]
        ]
        recorded = payload["recorded_order"]
        self._recorded_order = (
            None
            if recorded is None
            else [tuple(int(b) for b in sig) for sig in recorded]
        )
