"""The MPC-based power manager (Figure 6 of the paper).

:class:`MPCPowerManager` composes the four architectural blocks:

* the **optimizer** (greedy hill climbing + search-order window,
  :mod:`~repro.core.optimizer`),
* the **kernel pattern extractor** (:mod:`~repro.core.pattern`),
* the **performance and power predictor** (:mod:`~repro.ml.predictors`),
* the **adaptive horizon generator** (:mod:`~repro.core.horizon`),

plus the **performance tracker** (:mod:`~repro.core.tracker`) that feeds
headroom back into the optimization.

Lifecycle, exactly as in the paper and now explicit as a validated
:class:`~repro.runtime.lifecycle.PolicyLifecycle` state machine: on an
application's *first* invocation the manager has no stored knowledge —
it is ``PROFILING``, running PPK (the very first kernel at fail-safe)
while the extractor records the execution pattern and the manager
measures its own optimization cost (T_PPK).  When the first invocation
ends, the profile is frozen into a search order and horizon statistics
(``FROZEN``); the first decision afterwards moves the manager to ``MPC``
and every later invocation runs true MPC with receding, adaptively
bounded horizons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.horizon import AdaptiveHorizonGenerator
from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelPatternExtractor, KernelRecord
from repro.core.search_order import SearchOrder, build_search_order
from repro.core.tracker import PerformanceTracker
from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace, HardwareConfig
from repro.ml.predictors import PerfPowerPredictor
from repro.obs import Instrumentation, or_noop
from repro.runtime.lifecycle import PolicyLifecycle, PolicyState
from repro.sim.policy import Decision, Observation, PowerPolicy
from repro.sim.simulator import OverheadModel
from repro.workloads.counters import CounterVector

__all__ = ["MPCPowerManager"]

#: Bump when the manager snapshot layout changes.
MANAGER_SNAPSHOT_SCHEMA = 1


@dataclass
class _ProfiledStats:
    """Statistics frozen at the end of the profiling invocation."""

    search_order: SearchOrder
    num_kernels: int
    mean_prefix_length: float
    ppk_overhead_s: float
    baseline_total_time_s: float


class MPCPowerManager(PowerPolicy):
    """Future-aware kernel-level DVFS manager using MPC.

    Args:
        target_throughput: Performance target — the baseline (Turbo
            Core) application throughput I_total/T_total.  Must be a
            positive, finite rate.
        predictor: Performance/power model (Random Forest in the real
            system; the oracle or synthetic-error models in studies).
        space: Searchable configuration space.
        alpha: Total performance-penalty bound for the adaptive horizon
            (the paper evaluates 0.05).  Must be non-negative and
            finite; ``alpha == 0`` is the zero-overhead-budget ablation.
        adaptive_horizon: When ``False``, always use the full horizon
            (the ablation of Section VI-E).
        overhead_model: Cost model the manager uses to estimate its own
            optimization time; should match the simulator's so that
            T_PPK and T_MPC reflect what is actually charged.
        fail_safe: Fallback configuration.
        use_search_order: Ablation switch — when ``False``, the
            above/below-target reordering of Section IV-A1a is disabled
            and windows are visited in plain execution order.
        window_reserve: Ablation switch — when ``False``, undecided
            window members are not reserved at fail-safe, reverting to
            per-kernel constraint checking (the window's future can no
            longer repay or restrict the current kernel's slack).
        use_matrix: Decision-core path selector, passed through to the
            hill-climb optimizer; ``False`` forces the scalar reference
            path, which the vectorization contract keeps float-identical
            to the columnar one (asserted by ``tests/differential/``).
        obs: Optional instrumentation; decisions annotate the current
            trace span (mode, horizon, predictions) and emit registry
            metrics.  Defaults to the shared no-op.

    Raises:
        ValueError: If ``target_throughput`` is not a positive finite
            number or ``alpha`` is negative or non-finite.
    """

    name = "MPC"

    def __init__(
        self,
        target_throughput: float,
        predictor: PerfPowerPredictor,
        space: Optional[ConfigSpace] = None,
        alpha: float = 0.05,
        adaptive_horizon: bool = True,
        overhead_model: Optional[OverheadModel] = None,
        fail_safe: HardwareConfig = FAILSAFE_CONFIG,
        use_search_order: bool = True,
        window_reserve: bool = True,
        use_matrix: bool = True,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if not math.isfinite(target_throughput) or target_throughput <= 0:
            raise ValueError(
                "target_throughput must be a positive, finite "
                f"instructions-per-second rate; got {target_throughput!r}"
            )
        if not math.isfinite(alpha) or alpha < 0:
            raise ValueError(
                "alpha must be a non-negative, finite performance-penalty "
                f"bound; got {alpha!r}"
            )
        self.obs = or_noop(obs)
        self.space = space if space is not None else ConfigSpace()
        self.optimizer = GreedyHillClimbOptimizer(
            self.space, predictor, fail_safe, obs=self.obs, use_matrix=use_matrix
        )
        self.tracker = PerformanceTracker(target_throughput)
        self.extractor = KernelPatternExtractor()
        self.alpha = alpha
        self.adaptive_horizon = adaptive_horizon
        self.overhead_model = (
            overhead_model if overhead_model is not None else OverheadModel()
        )
        self.use_search_order = use_search_order
        self.window_reserve = window_reserve
        self._fail_safe = self.optimizer.fail_safe

        # Pre-bound series handles for the per-decision telemetry: the
        # registry lookup + label canonicalization happen once here
        # instead of on every decision (no-ops under NOOP obs).
        registry = self.obs.registry
        decisions = registry.counter(
            "repro_mpc_decisions_total", "Decisions by optimization mode"
        )
        self._m_decisions = {
            mode: decisions.labelled(mode=mode) for mode in ("ppk", "mpc", "skip")
        }
        self._m_model_evals = registry.counter(
            "repro_mpc_model_evaluations_total",
            "Predictor queries spent across all decisions",
        ).labelled()
        self._m_pattern_misses = registry.counter(
            "repro_mpc_pattern_misses_total",
            "Decisions where the extractor had no expected record",
        ).labelled()

        self._lifecycle = PolicyLifecycle()
        self._stats: Optional[_ProfiledStats] = None
        self._horizon_gen: Optional[AdaptiveHorizonGenerator] = None
        self._last_config: HardwareConfig = self._fail_safe
        self._last_decision_overhead_s = 0.0

        # Profiling-run accumulators.
        self._profile_insts: List[float] = []
        self._profile_times: List[float] = []
        self._profile_overhead_s = 0.0

    # ----- lifecycle -------------------------------------------------------------

    @property
    def state(self) -> PolicyState:
        """The manager's lifecycle state (profiling / frozen / mpc)."""
        return self._lifecycle.state

    @property
    def profiled(self) -> bool:
        """Whether the initial (PPK) profiling invocation has completed."""
        return self._lifecycle.state is not PolicyState.PROFILING

    @property
    def search_order(self) -> Optional[SearchOrder]:
        """The frozen search order, once profiled."""
        return self._stats.search_order if self._stats else None

    def begin_run(self) -> None:
        if (
            self._lifecycle.state is PolicyState.PROFILING
            and self._profile_insts
        ):
            # The profiling invocation just ended: freeze its profile
            # into the search order and horizon statistics.
            self._freeze_profile()
            self._transition(PolicyState.FROZEN)
        self.extractor.end_run()
        self.tracker.reset()
        if self._horizon_gen is not None:
            self._horizon_gen.reset()
        self._last_config = self._fail_safe
        self._last_decision_overhead_s = 0.0

    def _freeze_profile(self) -> None:
        insts = self._profile_insts
        times = self._profile_times
        throughputs = [i / t for i, t in zip(insts, times)]
        cumulative = []
        acc_i = acc_t = 0.0
        for i, t in zip(insts, times):
            acc_i += i
            acc_t += t
            cumulative.append(acc_i / acc_t)
        if self.use_search_order:
            order = build_search_order(
                throughputs, cumulative, self.tracker.target_throughput
            )
        else:
            # Ablation: plain execution order (every window degenerates
            # to the current kernel plus the fail-safe reserve).
            order = SearchOrder(
                order=tuple(range(len(insts))), above_target=frozenset()
            )
        baseline_total = sum(insts) / self.tracker.target_throughput
        self._stats = _ProfiledStats(
            search_order=order,
            num_kernels=len(insts),
            mean_prefix_length=order.mean_prefix_length(),
            ppk_overhead_s=self._profile_overhead_s,
            baseline_total_time_s=baseline_total,
        )
        self._horizon_gen = AdaptiveHorizonGenerator(
            num_kernels=len(insts),
            mean_prefix_length=order.mean_prefix_length(),
            ppk_overhead_s=self._profile_overhead_s,
            baseline_total_time_s=baseline_total,
            alpha=self.alpha,
            time_profile=list(times),
            instruction_profile=list(insts),
            obs=self.obs,
        )

    def _transition(self, state: PolicyState) -> None:
        self._lifecycle.transition(state)
        self.obs.registry.counter(
            "repro_mpc_lifecycle_transitions_total",
            "Manager lifecycle transitions by destination state",
        ).inc(to=state.value)

    # ----- decisions ---------------------------------------------------------------

    def decide(self, index: int) -> Decision:
        if self._lifecycle.state is PolicyState.PROFILING:
            decision = self._decide_ppk()
        else:
            if self._lifecycle.state is PolicyState.FROZEN:
                # First decision against the frozen profile: steady state.
                self._transition(PolicyState.MPC)
            decision = self._decide_mpc(index)
        self._last_config = decision.config
        self._last_decision_overhead_s = self.overhead_model.decision_time_s(decision)
        if self.obs.enabled:
            self._m_model_evals.inc(decision.model_evaluations)
        return decision

    def _count_decision(self, mode: str) -> None:
        span = self.obs.tracer.current()
        if span is not None:
            span.attributes["mode"] = mode
        self._m_decisions[mode].inc()

    def _annotate_prediction(self, record: KernelRecord, result: Any) -> None:
        """Stamp predicted IPS / power for the kernel about to launch."""
        estimate = result.estimate
        if estimate.time_s > 0:
            span = self.obs.tracer.current()
            if span is not None:
                attrs = span.attributes
                attrs["predicted_ips"] = record.instructions / estimate.time_s
                attrs["predicted_power_w"] = estimate.energy_j / estimate.time_s

    def _decide_ppk(self) -> Decision:
        """Profiling mode: run PPK while the pattern is being extracted."""
        if self.obs.enabled:
            self._count_decision("ppk")
        record = self.extractor.last_record()
        if record is None:
            return Decision(config=self._fail_safe, fail_safe=True, horizon=0)
        result = self.optimizer.optimize_kernel(record, self.tracker)
        if self.obs.enabled:
            self._annotate_prediction(record, result)
        return Decision(
            config=result.config,
            model_evaluations=result.evaluations,
            horizon=1,
            fail_safe=result.fail_safe,
        )

    def _decide_mpc(self, index: int) -> Decision:
        assert self._stats is not None and self._horizon_gen is not None
        n = self._stats.num_kernels
        if index >= n:
            # The application launched more kernels than the profile
            # recorded; degrade gracefully to PPK behaviour.
            self.obs.tracer.annotate("pattern_hit", False)
            return self._decide_ppk()

        horizon = (
            self._horizon_gen.horizon(index) if self.adaptive_horizon else n
        )
        if self.obs.enabled:
            hit = self.extractor.expected_record(index) is not None
            span = self.obs.tracer.current()
            if span is not None:
                attrs = span.attributes
                attrs["horizon_cap"] = n
                attrs["pattern_hit"] = hit
            if not hit:
                self._m_pattern_misses.inc()
        if horizon <= 0:
            # No overhead budget: skip optimization (no model calls).
            # The previous configuration is only safe to reuse when the
            # upcoming kernel looks like the one that just ran AND we
            # are still on target; across a kernel transition, or once
            # cumulative throughput slips, take the fail-safe so the
            # situation stays recoverable.
            expected = self.extractor.expected_record(index)
            last = self.extractor.last_record()
            same_kernel = (
                expected is not None
                and last is not None
                and expected.signature == last.signature
            )
            if self.obs.enabled:
                self._count_decision("skip")
                # Health monitors key their budget-collapse detector on
                # runs of these exhausted-budget fail-safe skips.
                span = self.obs.tracer.current()
                if span is not None:
                    span.attributes["budget_exhausted"] = True
            if same_kernel and self.tracker.above_target():
                return Decision(config=self._last_config, horizon=0)
            return Decision(config=self._fail_safe, horizon=0, fail_safe=True)

        if self.obs.enabled:
            self._count_decision("mpc")
        window, reserved = self._window_records(index, horizon)
        if not window:
            return Decision(config=self._fail_safe, fail_safe=True, horizon=horizon)

        result = self.optimizer.optimize_window(
            window, self.tracker, reserved=reserved,
            reserve_window=self.window_reserve,
        )
        if self.obs.enabled:
            self._annotate_prediction(window[-1], result)
        return Decision(
            config=result.config,
            model_evaluations=result.evaluations,
            horizon=horizon,
            fail_safe=result.fail_safe,
        )

    def _window_records(
        self, index: int, horizon: int
    ) -> Tuple[List[KernelRecord], List[KernelRecord]]:
        """The optimization window and its fail-safe reserve.

        ``window`` holds the search-order prefix records ending with the
        current kernel; ``reserved`` holds window-range kernels outside
        the optimization prefix (they run within the horizon but are
        decided on a later shift) that Equation 3's whole-window
        constraint reserves at fail-safe.  Pure — shared by the real
        decision and the side-effect-free prefetch hook.
        """
        assert self._stats is not None
        positions = self._stats.search_order.window(index, horizon)
        window: List[KernelRecord] = []
        for position in positions:
            record = self.extractor.expected_record(position)
            if record is not None:
                window.append(record)
        in_prefix = set(positions)
        reserved: List[KernelRecord] = []
        if self.window_reserve:
            n = self._stats.num_kernels
            for position in range(index, min(index + horizon, n)):
                if position in in_prefix:
                    continue
                record = self.extractor.expected_record(position)
                if record is not None:
                    reserved.append(record)
        return window, reserved

    def prefetch_counters(self, index: int) -> Tuple[CounterVector, ...]:
        """Counter vectors the next :meth:`decide` will sweep.

        Recomputes the upcoming decision's window — lifecycle
        transitions, telemetry, and tracker state untouched — so
        ``SessionManager.step_batch`` can stack this session's sweeps
        with every other ready session's into one predictor call.
        Estimates are pure functions of (counters, lattice, predictor),
        so a preloaded sweep stays valid no matter what other sessions
        do in between.
        """
        if self._lifecycle.state is PolicyState.PROFILING:
            record = self.extractor.last_record()
            return (record.counters,) if record is not None else ()
        assert self._stats is not None and self._horizon_gen is not None
        n = self._stats.num_kernels
        if index >= n:
            # decide() degrades to PPK behaviour past the profile.
            record = self.extractor.last_record()
            return (record.counters,) if record is not None else ()
        horizon = (
            self._horizon_gen.horizon(index, emit_obs=False)
            if self.adaptive_horizon
            else n
        )
        if horizon <= 0:
            return ()  # the skip branch makes no model calls
        window, reserved = self._window_records(index, horizon)
        wanted: Dict[CounterVector, None] = {}
        for record in window:
            wanted.setdefault(record.counters)
        for record in reserved:
            wanted.setdefault(record.counters)
        return tuple(wanted)

    # ----- feedback -------------------------------------------------------------------

    def observe(self, observation: Observation) -> None:
        time_s = observation.measurement.time_s
        self.tracker.update(observation.instructions, time_s)
        self.extractor.observe(
            observation.counters,
            observation.instructions,
            time_s,
            observation.measurement.gpu_power_w,
        )
        if self._lifecycle.state is PolicyState.PROFILING:
            self._profile_insts.append(observation.instructions)
            self._profile_times.append(time_s)
            self._profile_overhead_s += self._last_decision_overhead_s
        elif self._horizon_gen is not None:
            self._horizon_gen.record(time_s, self._last_decision_overhead_s)

    # ----- migration ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Mutable state as a JSON-able dict.

        The frozen search order and horizon statistics are *not*
        serialized: they are a deterministic function of the profiling
        accumulators, so :meth:`restore` recomputes them by re-running
        the freeze.  Only genuinely mutable state migrates.
        """
        return {
            "schema": MANAGER_SNAPSHOT_SCHEMA,
            "lifecycle": self._lifecycle.state.value,
            "tracker": self.tracker.snapshot(),
            "extractor": self.extractor.snapshot(),
            "last_config": self._last_config.as_dict(),
            "last_decision_overhead_s": self._last_decision_overhead_s,
            "profile": {
                "instructions": list(self._profile_insts),
                "times": list(self._profile_times),
                "overhead_s": self._profile_overhead_s,
            },
            "horizon_elapsed_s": (
                self._horizon_gen.elapsed_s if self._horizon_gen else None
            ),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Rebuild mutable state from :meth:`snapshot` output.

        Must be called on a manager constructed with the same arguments
        (target, predictor, space, alpha, ablation switches) as the
        snapshotted one.
        """
        if payload.get("schema") != MANAGER_SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported manager snapshot schema: {payload.get('schema')!r}"
            )
        state = PolicyState(payload["lifecycle"])
        self.tracker.restore(payload["tracker"])
        self.extractor.restore(payload["extractor"])
        self._last_config = HardwareConfig.from_dict(payload["last_config"])
        self._last_decision_overhead_s = float(payload["last_decision_overhead_s"])
        profile = payload["profile"]
        self._profile_insts = [float(v) for v in profile["instructions"]]
        self._profile_times = [float(v) for v in profile["times"]]
        self._profile_overhead_s = float(profile["overhead_s"])

        self._lifecycle = PolicyLifecycle()
        self._stats = None
        self._horizon_gen = None
        if state is not PolicyState.PROFILING:
            # Recompute the frozen statistics deterministically from the
            # restored profiling accumulators, then walk the machine
            # forward through its legal transitions.
            self._freeze_profile()
            self._lifecycle.transition(PolicyState.FROZEN)
            if state is PolicyState.MPC:
                self._lifecycle.transition(PolicyState.MPC)
            elapsed = payload["horizon_elapsed_s"]
            if elapsed is not None and self._horizon_gen is not None:
                self._horizon_gen.restore({"elapsed_s": elapsed})
