"""Performance tracker: throughput target and execution-time headroom.

Implements Equations 4 and 5 of the paper.  The tracker accumulates the
instructions and kernel time of completed launches and, given an
expected instruction count for an upcoming kernel, computes the maximum
execution time that kernel may take while keeping the cumulative
throughput at or above the target:

    E[T_i] <= (sum_{j<i} I_j + E[I_i]) / (I_total/T_total) - sum_{j<i} T_j

"Significant performance slack provides the optimizer with the
opportunity to aggressively save energy.  With less headroom, the
optimizer operates more conservatively."
"""

from __future__ import annotations

import math

__all__ = ["PerformanceTracker"]


class PerformanceTracker:
    """Tracks cumulative kernel throughput against a target.

    Args:
        target_throughput: The performance target ``I_total/T_total`` in
            instructions per second — in the paper, the throughput the
            default Turbo Core power manager achieves.
    """

    def __init__(self, target_throughput: float) -> None:
        if target_throughput <= 0 or not math.isfinite(target_throughput):
            raise ValueError("target throughput must be positive and finite")
        self.target_throughput = target_throughput
        self._instructions = 0.0
        self._time_s = 0.0

    # ----- state ------------------------------------------------------------

    @property
    def instructions(self) -> float:
        """Instructions retired by completed launches (Σ I_j)."""
        return self._instructions

    @property
    def time_s(self) -> float:
        """Kernel time of completed launches (Σ T_j; no overheads)."""
        return self._time_s

    @property
    def throughput(self) -> float:
        """Cumulative throughput so far; infinite before any launch."""
        if self._time_s == 0.0:
            return math.inf
        return self._instructions / self._time_s

    def above_target(self) -> bool:
        """Whether cumulative throughput meets or exceeds the target."""
        return self.throughput >= self.target_throughput

    def update(self, instructions: float, time_s: float) -> None:
        """Record a completed launch.

        Args:
            instructions: Instructions the launch retired.
            time_s: Kernel wall-clock time of the launch.
        """
        if instructions < 0 or time_s < 0:
            raise ValueError("instructions and time must be non-negative")
        self._instructions += instructions
        self._time_s += time_s

    def adjust(self, instructions: float, time_s: float) -> None:
        """Apply a *signed* correction to the accumulated state.

        Used by speculative window planning to move a kernel between
        "reserved at fail-safe" and "committed at its optimized
        estimate"; real execution accounting should use :meth:`update`.
        """
        self._instructions += instructions
        self._time_s += time_s

    def reset(self) -> None:
        """Forget all accumulated history."""
        self._instructions = 0.0
        self._time_s = 0.0

    # ----- headroom (Equations 4-5) ------------------------------------------

    def headroom_s(self, expected_instructions: float) -> float:
        """Maximum time the next kernel may take (Equation 5).

        Args:
            expected_instructions: The pattern extractor's estimate of
                the upcoming kernel's instruction count, E[I_i].

        Returns:
            The time budget in seconds; can be negative when past
            launches have already fallen behind the target so far that
            even a zero-time kernel would not catch up.
        """
        if expected_instructions < 0:
            raise ValueError("expected instructions must be non-negative")
        budget = (
            (self._instructions + expected_instructions) / self.target_throughput
            - self._time_s
        )
        return budget

    def admits(self, expected_instructions: float, expected_time_s: float) -> bool:
        """Equation 4: would this launch keep cumulative throughput on target?"""
        return expected_time_s <= self.headroom_s(expected_instructions)

    # ----- migration ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Accumulated state as a JSON-able dict."""
        return {"instructions": self._instructions, "time_s": self._time_s}

    def restore(self, payload: dict) -> None:
        """Rebuild accumulated state from :meth:`snapshot` output."""
        self._instructions = float(payload["instructions"])
        self._time_s = float(payload["time_s"])

    def copy(self) -> "PerformanceTracker":
        """An independent tracker with the same state.

        The MPC window optimization speculates several kernels ahead;
        it works on a copy and leaves the live tracker untouched until
        launches actually complete.
        """
        clone = PerformanceTracker(self.target_throughput)
        clone._instructions = self._instructions
        clone._time_s = self._time_s
        return clone
