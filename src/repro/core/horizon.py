"""Adaptive prediction-horizon generator (Section IV-A4).

The horizon length H trades solution quality against optimizer
overhead: longer horizons see further but cost more model evaluations,
which is fatal for applications with short kernels (Spmv).  The paper
bounds the *total* performance penalty — MPC compute overhead plus the
losses of approximation — to a factor α of the baseline execution time
so far, and solves for the largest admissible H_i per kernel:

    H_i <= (N / N̄) * [ (1 + α - 1/i) * i * T_total/N
                        - Σ_{j<i} (T_j + T_MPC,j) ] / T_PPK

using the statistics gathered on the first (profiling) invocation:
N (kernel count), N̄ (average per-kernel search-order prefix length),
and T_PPK (total optimizer time of the profiling run).  H_i is floored
to an integer and clamped to [0, N]; H_i = 0 means "skip optimization
for this kernel" (the previous configuration is reused at no cost).

One refinement over the paper's printed formula: the baseline time "so
far" can be launch-weighted instead of the uniform ``i * T_total/N``.
Each position j is credited ``max(time_share_j, instruction_share_j)``
where ``time_share_j = T_total * t_j / Σ t`` is the share of time the
baseline spends on that launch (covers intrinsically slow,
low-throughput kernels) and ``instruction_share_j = I_j / target`` is
the time the throughput tracker itself would grant it (covers
high-throughput kernels that the optimizer legitimately slows to save
energy).  With the uniform approximation, either kind of non-uniformity
reads as overhead debt and pins the horizon to zero even though no real
performance was lost; the weighted form charges only genuine overruns
against alpha.  When no profiles are supplied the generator uses the
paper's uniform approximation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.obs import Instrumentation, or_noop

__all__ = ["AdaptiveHorizonGenerator"]


class AdaptiveHorizonGenerator:
    """Chooses the per-kernel horizon length H_i.

    Args:
        num_kernels: N, the application's launch count.
        mean_prefix_length: N̄, the average search-order prefix length.
        ppk_overhead_s: T_PPK, the total optimizer time of the
            profiling (PPK) invocation.
        baseline_total_time_s: T_total, the baseline (Turbo Core) total
            kernel time of the application.
        alpha: Bound on the total relative performance penalty
            (the paper uses 0.05).
        time_profile: Optional per-launch times from the profiling
            invocation; enables the launch-weighted baseline (see the
            module docstring).
        instruction_profile: Optional per-launch instruction counts;
            when given together with ``time_profile``, each launch is
            credited the larger of its time share and its
            throughput-tracker allowance.
        obs: Optional instrumentation; horizon requests annotate the
            current trace span with the remaining overhead budget and
            emit request/zero-horizon counters.
    """

    def __init__(
        self,
        num_kernels: int,
        mean_prefix_length: float,
        ppk_overhead_s: float,
        baseline_total_time_s: float,
        alpha: float = 0.05,
        time_profile: Optional[Sequence[float]] = None,
        instruction_profile: Optional[Sequence[float]] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if num_kernels < 1:
            raise ValueError("need at least one kernel")
        if mean_prefix_length <= 0:
            raise ValueError("mean prefix length must be positive")
        if ppk_overhead_s < 0 or baseline_total_time_s <= 0:
            raise ValueError("invalid profiling statistics")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.num_kernels = num_kernels
        self.mean_prefix_length = mean_prefix_length
        self.ppk_overhead_s = ppk_overhead_s
        self.baseline_total_time_s = baseline_total_time_s
        self.alpha = alpha
        self._baseline_cumulative: Optional[list] = None
        if time_profile is not None:
            if len(time_profile) != num_kernels:
                raise ValueError("time profile length must equal N")
            total = float(sum(time_profile))
            if total <= 0:
                raise ValueError("time profile must have positive total")
            time_shares = [
                baseline_total_time_s * t / total for t in time_profile
            ]
            if instruction_profile is not None:
                if len(instruction_profile) != num_kernels:
                    raise ValueError("instruction profile length must equal N")
                total_insts = float(sum(instruction_profile))
                if total_insts <= 0:
                    raise ValueError("instruction profile must be positive")
                insts_shares = [
                    baseline_total_time_s * i / total_insts
                    for i in instruction_profile
                ]
                shares = [max(t, i) for t, i in zip(time_shares, insts_shares)]
                # Renormalize: taking the max inflates the total above
                # T_total; scale back so the full-application budget is
                # still exactly (1 + alpha) * T_total.
                scale = baseline_total_time_s / sum(shares)
                shares = [s * scale for s in shares]
            else:
                shares = time_shares
            acc = 0.0
            cumulative = []
            for share in shares:
                acc += share
                cumulative.append(acc)
            self._baseline_cumulative = cumulative
        self.obs = or_noop(obs)
        # Pre-bound series handles: the horizon is computed once per
        # decision, so the per-call label canonicalization and registry
        # lookups are hoisted to construction (no-ops under NOOP obs).
        registry = self.obs.registry
        self._m_requests = registry.counter(
            "repro_horizon_requests_total", "Adaptive horizon computations"
        ).labelled()
        self._m_zero = registry.counter(
            "repro_horizon_zero_total",
            "Horizon requests resolved to zero (no overhead budget)",
        ).labelled()
        self._m_length = registry.histogram(
            "repro_horizon_length",
            "Chosen horizon lengths",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).labelled()
        self._m_lock = registry.lock
        self._elapsed_s = 0.0  # Σ (T_j + T_MPC,j) over completed kernels

    @property
    def elapsed_s(self) -> float:
        """Kernel time plus optimizer time accumulated so far."""
        return self._elapsed_s

    def record(self, kernel_time_s: float, mpc_overhead_s: float) -> None:
        """Account a completed kernel and its optimization overhead."""
        if kernel_time_s < 0 or mpc_overhead_s < 0:
            raise ValueError("times must be non-negative")
        self._elapsed_s += kernel_time_s + mpc_overhead_s

    def reset(self) -> None:
        """Clear accumulated state (a new run of the application)."""
        self._elapsed_s = 0.0

    def snapshot(self) -> dict:
        """Mutable state as a JSON-able dict.

        The frozen profiling statistics are constructor arguments and
        are recomputed on restore; only the elapsed-time accumulator
        migrates.
        """
        return {"elapsed_s": self._elapsed_s}

    def restore(self, payload: dict) -> None:
        """Rebuild mutable state from :meth:`snapshot` output."""
        self._elapsed_s = float(payload["elapsed_s"])

    def horizon(self, index: int, *, emit_obs: bool = True) -> int:
        """H_i for the upcoming kernel.

        Args:
            index: Zero-based execution index of the upcoming kernel
                (the paper's i is ``index + 1``).
            emit_obs: Suppress span annotations and registry counters
                when ``False``.  The computation itself is pure, so
                speculative callers (the batched prefetch hook) can
                evaluate H_i without double-counting the real
                decision's telemetry.

        Returns:
            The admissible horizon length, in [0, N].
        """
        if index < 0:
            raise ValueError("index must be non-negative")
        i = index + 1
        n = self.num_kernels

        if self.ppk_overhead_s == 0.0:
            return n  # free optimizer: always use the full horizon

        if self._baseline_cumulative is not None and index < n:
            allowed = self._baseline_cumulative[index]
            previous = self._baseline_cumulative[index - 1] if index > 0 else 0.0
            current_share = allowed - previous
            budget = (1.0 + self.alpha) * allowed - current_share - self._elapsed_s
        else:
            per_kernel_baseline = self.baseline_total_time_s / n
            budget = (
                (1.0 + self.alpha - 1.0 / i) * i * per_kernel_baseline
                - self._elapsed_s
            )
        h = (n / self.mean_prefix_length) * budget / self.ppk_overhead_s
        if not math.isfinite(h):
            return n
        horizon = int(min(n, max(0.0, math.floor(h))))
        if emit_obs and self.obs.enabled:
            self.obs.tracer.annotate("horizon_budget_s", budget)
            with self._m_lock:
                self._m_requests.inc_unlocked()
                if horizon <= 0:
                    self._m_zero.inc_unlocked()
                self._m_length.observe_unlocked(horizon)
        return horizon
