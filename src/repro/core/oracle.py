"""The Theoretically Optimal (TO) scheme (Sections II-E, VI-C).

TO assigns each kernel launch the configuration that minimizes total
application energy subject to no performance loss versus the baseline:

    min Σ E_i(s_i)   s.t.   Σ T_i(s_i) <= T_budget

with perfect knowledge of every kernel's behaviour at every
configuration and no runtime overhead.  The paper implements it as an
exhaustive search (exponential, hence impractical online); here we
exploit the problem's structure — it is a multiple-choice knapsack over
per-launch configuration menus — and solve it with a Lagrangian
relaxation plus a greedy repair/improvement pass, which is exact up to
one kernel's discretization gap and empirically matches exhaustive
search on small instances (see the tests).

Launches of the same (kernel, input) are interchangeable in both
objective and constraint, so decisions are made per *unique* kernel
with multiplicity weights, which keeps the solve to milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.hardware.table import ConfigTable
from repro.workloads.app import Application
from repro.workloads.kernel import KernelSpec

__all__ = ["OptimalPlan", "solve_theoretically_optimal"]


@dataclass(frozen=True)
class OptimalPlan:
    """Solution of the theoretically-optimal planning problem.

    Attributes:
        configs: Chosen configuration per launch, in execution order.
        total_time_s: Planned total kernel time.
        total_energy_j: Planned total chip energy.
        time_budget_s: The constraint's right-hand side.
    """

    configs: Tuple[HardwareConfig, ...]
    total_time_s: float
    total_energy_j: float
    time_budget_s: float

    @property
    def feasible(self) -> bool:
        """Whether the plan respects the time budget."""
        return self.total_time_s <= self.time_budget_s * (1.0 + 1e-12)


def _menus(
    app: Application, apu: APUModel, space: ConfigSpace
) -> Tuple[List[str], Dict[str, Tuple[List[float], List[float]]], Dict[str, int]]:
    """Per-unique-kernel (time, energy) menus and launch multiplicities.

    Each menu is one columnar ground-truth evaluation over the whole
    lattice (``tolist()`` yields the same floats the scalar
    ``apu.execute`` loop produced, in the same ``all_configs`` order).
    """
    table = ConfigTable(space)
    keys: List[str] = []
    menus: Dict[str, Tuple[List[float], List[float]]] = {}
    counts: Dict[str, int] = {}
    for spec in app.kernels:
        counts[spec.key] = counts.get(spec.key, 0) + 1
    for spec in app.unique_kernels:
        matrix = apu.execute_matrix(spec, table)
        menus[spec.key] = (matrix.times_s.tolist(), matrix.energy_j.tolist())
        keys.append(spec.key)
    return keys, menus, counts


def _pick(menu: Tuple[List[float], List[float]], lam: float) -> int:
    """Index minimizing E + lam * T on one kernel's menu."""
    times, energies = menu
    best, best_cost = 0, math.inf
    for idx in range(len(times)):
        cost = energies[idx] + lam * times[idx]
        if cost < best_cost:
            best_cost = cost
            best = idx
    return best


def solve_theoretically_optimal(
    app: Application,
    apu: APUModel,
    target_throughput: float,
    space: Optional[ConfigSpace] = None,
    lambda_iterations: int = 60,
) -> OptimalPlan:
    """Solve TO for one application.

    Args:
        app: The application to plan.
        apu: Ground-truth hardware model (perfect knowledge).
        target_throughput: Baseline throughput that must be matched;
            the time budget is ``I_total / target``.
        space: Configuration space; defaults to the full 336 points.
        lambda_iterations: Bisection steps on the Lagrange multiplier.

    Returns:
        The planned per-launch configurations and their totals.
    """
    space = space if space is not None else ConfigSpace()
    keys, menus, counts = _menus(app, apu, space)
    budget = app.total_instructions / target_throughput
    configs = space.all_configs()

    def totals(choice: Dict[str, int]) -> Tuple[float, float]:
        time_s = sum(menus[k][0][choice[k]] * counts[k] for k in keys)
        energy = sum(menus[k][1][choice[k]] * counts[k] for k in keys)
        return time_s, energy

    # Unconstrained optimum: pure energy minimization.
    choice = {k: min(range(len(configs)), key=lambda i: menus[k][1][i]) for k in keys}
    time_s, _ = totals(choice)
    if time_s > budget:
        # Bisection on the Lagrange multiplier: larger lambda weights
        # time more heavily, shrinking total time monotonically.
        lo, hi = 0.0, 1.0
        def choice_at(lam: float) -> Dict[str, int]:
            return {k: _pick(menus[k], lam) for k in keys}
        while totals(choice_at(hi))[0] > budget and hi < 1e12:
            hi *= 4.0
        for _ in range(lambda_iterations):
            mid = 0.5 * (lo + hi)
            if totals(choice_at(mid))[0] > budget:
                lo = mid
            else:
                hi = mid
        choice = choice_at(hi)
        time_s, _ = totals(choice)
        if time_s > budget:
            # Even the fastest assignment misses the budget; fall back
            # to per-kernel fastest configurations.
            choice = {
                k: min(range(len(configs)), key=lambda i: menus[k][0][i])
                for k in keys
            }

    # Greedy improvement: spend remaining slack on the per-step move
    # with the best energy saving per unit of extra time, considering
    # every alternative configuration of every kernel.
    improved = True
    while improved:
        improved = False
        time_s, energy = totals(choice)
        slack = budget - time_s
        best_move: Optional[Tuple[str, int]] = None
        best_rate = 0.0
        for k in keys:
            times, energies = menus[k]
            cur = choice[k]
            for idx in range(len(times)):
                d_time = (times[idx] - times[cur]) * counts[k]
                d_energy = (energies[idx] - energies[cur]) * counts[k]
                if d_energy >= 0:
                    continue
                if d_time <= 0:
                    rate = math.inf  # strictly better: less energy, no slower
                elif d_time <= slack:
                    rate = -d_energy / d_time
                else:
                    continue
                if rate > best_rate:
                    best_rate = rate
                    best_move = (k, idx)
        if best_move is not None:
            choice[best_move[0]] = best_move[1]
            improved = True

    plan = tuple(configs[choice[spec.key]] for spec in app.kernels)
    time_s, energy = totals(choice)
    return OptimalPlan(
        configs=plan,
        total_time_s=time_s,
        total_energy_j=energy,
        time_budget_s=budget,
    )
