"""The paper's contribution: MPC-based GPGPU power management.

Exports the Figure-6 architecture blocks — optimizer, pattern extractor,
performance tracker, adaptive horizon generator — the composed
:class:`~repro.core.manager.MPCPowerManager`, the baseline policies
(PPK, fixed, planned), and the theoretically-optimal offline solver.
"""

from repro.core.horizon import AdaptiveHorizonGenerator
from repro.core.manager import MPCPowerManager
from repro.core.optimizer import GreedyHillClimbOptimizer, OptimizationResult
from repro.core.oracle import OptimalPlan, solve_theoretically_optimal
from repro.core.pattern import KernelPatternExtractor, KernelRecord, detect_period
from repro.core.policies import FixedConfigPolicy, PlannedPolicy, PPKPolicy
from repro.core.search_order import SearchOrder, build_search_order
from repro.core.tracker import PerformanceTracker

__all__ = [
    "AdaptiveHorizonGenerator",
    "MPCPowerManager",
    "GreedyHillClimbOptimizer",
    "OptimizationResult",
    "OptimalPlan",
    "solve_theoretically_optimal",
    "KernelPatternExtractor",
    "KernelRecord",
    "detect_period",
    "FixedConfigPolicy",
    "PlannedPolicy",
    "PPKPolicy",
    "SearchOrder",
    "build_search_order",
    "PerformanceTracker",
]
