"""The MPC search-order heuristic (Section IV-A1a, Figure 7).

Truly optimizing a window of H kernels requires exponential
backtracking.  The paper instead fixes, from the application's first
(profiling) invocation, a *search order* over kernel positions such
that optimizing the window's kernels in that order — carrying headroom
from one to the next and never revisiting — approximates backtracking
in polynomial time.

Construction (from the profiled per-kernel throughputs):

1. After each kernel, note whether the *accumulated* application
   throughput was above the overall target.  Above-target positions go
   to one group, the rest to the other.
2. Sort the above-target group by individual kernel throughput
   *ascending*, the below-target group *descending*.
3. Concatenate: above-target first.  (For the paper's Figure-7 example
   this yields (3, 2, 1, 6, 5, 4).)

At execution position ``i`` the optimization visits the still-pending
positions in search order, truncated at ``i`` — so the configuration
finally applied to kernel ``i`` was chosen *after* anticipating the
future kernels that precede it in search order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["SearchOrder", "build_search_order"]


@dataclass(frozen=True)
class SearchOrder:
    """A fixed optimization order over kernel positions.

    Attributes:
        order: Kernel positions (0-based execution indices) in the
            order the optimizer should visit them.
        above_target: Positions whose accumulated runtime throughput was
            above the overall target during profiling.
    """

    order: tuple
    above_target: frozenset

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))
        object.__setattr__(self, "above_target", frozenset(self.above_target))
        if sorted(self.order) != list(range(len(self.order))):
            raise ValueError("order must be a permutation of 0..N-1")

    def __len__(self) -> int:
        return len(self.order)

    def window(self, current: int, horizon: Optional[int] = None) -> List[int]:
        """Optimization order for execution position ``current``.

        Args:
            current: The execution index about to run.
            horizon: Maximum window length H_i; ``None`` (or a value
                covering the whole remaining run) uses the full future.

        Returns:
            Pending positions in search order, truncated at (and
            including) ``current``.  The last element is always
            ``current``.
        """
        if not 0 <= current < len(self.order):
            raise ValueError(f"current={current} out of range")
        limit = len(self.order) if horizon is None else max(1, horizon)
        window: List[int] = []
        for position in self.order:
            if position < current or position >= current + limit:
                continue
            window.append(position)
            if position == current:
                break
        if not window or window[-1] != current:
            # The horizon window excluded everything that precedes the
            # current kernel in search order; optimize it alone.
            window = [current]
        return window

    def prefix_length(self, current: int) -> int:
        """Unbounded window length at a position (for the paper's N̄)."""
        return len(self.window(current, horizon=None))

    def mean_prefix_length(self) -> float:
        """The paper's N̄: average per-kernel horizon from the order."""
        n = len(self.order)
        return sum(self.prefix_length(i) for i in range(n)) / n


def build_search_order(
    kernel_throughputs: Sequence[float],
    cumulative_throughputs: Sequence[float],
    target_throughput: float,
) -> SearchOrder:
    """Build the search order from a profiling run.

    Args:
        kernel_throughputs: Individual throughput of each launch, in
            execution order.
        cumulative_throughputs: Accumulated application throughput
            after each launch (ΣI/ΣT over the run so far).
        target_throughput: The overall target throughput.

    Returns:
        The search order.
    """
    if len(kernel_throughputs) != len(cumulative_throughputs):
        raise ValueError("throughput sequences must have equal length")
    if not kernel_throughputs:
        raise ValueError("cannot build a search order for an empty run")
    if target_throughput <= 0:
        raise ValueError("target throughput must be positive")

    above = [
        i
        for i, cum in enumerate(cumulative_throughputs)
        if cum >= target_throughput
    ]
    below = [i for i in range(len(kernel_throughputs)) if i not in set(above)]

    above.sort(key=lambda i: (kernel_throughputs[i], i))
    below.sort(key=lambda i: (-kernel_throughputs[i], i))

    return SearchOrder(order=tuple(above + below), above_target=frozenset(above))
