"""Greedy hill-climbing optimizer and the MPC window optimization.

The paper replaces exhaustive configuration search with two nested
approximations (Section IV-A1):

* **Greedy hill climbing over knobs.**  For one kernel, the optimizer
  ranks the four hardware knobs by predicted energy sensitivity and
  climbs each knob's axis — most sensitive first — as long as predicted
  energy keeps decreasing and the performance target stays met.  This
  cuts the per-kernel evaluations from ``|cpu| x |nb| x |gpu| x |cu|``
  (336) to roughly ``|cpu| + |nb| + |gpu| + |cu|`` (18), the paper's
  "factor of 19x".
* **Search-order window optimization.**  A window of future kernels is
  optimized in the fixed search order, each kernel consuming or
  contributing execution-time headroom, and the configuration chosen
  when the *current* kernel's turn comes (last in the window) is the one
  applied.

If no configuration meets the performance requirement the optimizer
falls back to the fail-safe configuration [P7, NB2, DPM4, 8 CUs].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace, HardwareConfig, Knob
from repro.hardware.table import ConfigTable
from repro.ml.predictors import EstimateBatch, KernelEstimate, PerfPowerPredictor
from repro.obs import Instrumentation, or_noop
from repro.workloads.counters import CounterVector

__all__ = ["OptimizationResult", "GreedyHillClimbOptimizer"]

#: Memoized per-knob span-attribute keys ("climb_steps.<knob>"), so the
#: per-search telemetry does not rebuild the strings on every decision.
_CLIMB_STEP_KEYS: Dict[str, str] = {}


def _climb_step_key(knob: str) -> str:
    key = _CLIMB_STEP_KEYS.get(knob)
    if key is None:
        key = _CLIMB_STEP_KEYS[knob] = f"climb_steps.{knob}"
    return key


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of optimizing one kernel.

    Attributes:
        config: The chosen hardware configuration.
        estimate: Predicted behaviour at that configuration.
        evaluations: Predictor queries spent.
        fail_safe: Whether the fail-safe fallback was taken.
    """

    config: HardwareConfig
    estimate: KernelEstimate
    evaluations: int
    fail_safe: bool


class GreedyHillClimbOptimizer:
    """Energy-minimizing configuration search for single kernels/windows.

    The search runs on the columnar decision core: candidate
    configurations are flat :class:`~repro.hardware.table.ConfigTable`
    indices, knob moves are stride arithmetic, and estimates come from
    the predictor's ``estimate_matrix`` batch interface when it has one
    (falling back to the scalar ``estimate``/``estimate_batch`` protocol
    for duck-typed predictors that don't).  Chosen configurations,
    estimate floats, and evaluation counts are identical to the scalar
    search — the golden-result suite depends on that.

    Args:
        space: The searchable configuration space.
        predictor: Performance/power model used for all estimates.
        fail_safe: Configuration applied when the performance target
            cannot be met (clamped onto ``space``).
        obs: Optional instrumentation; searches accumulate hill-climb
            step counts and matrix-path batch statistics onto the
            current trace span and emit registry counters.  Defaults to
            the shared no-op.
        use_matrix: When ``False``, force the scalar predictor protocol
            even if the predictor offers ``estimate_matrix`` — the
            comparison baseline for ``repro bench decide``.
    """

    def __init__(self, space: ConfigSpace, predictor: PerfPowerPredictor,
                 fail_safe: HardwareConfig = FAILSAFE_CONFIG,
                 max_passes: int = 3,
                 obs: Optional[Instrumentation] = None,
                 use_matrix: bool = True) -> None:
        if max_passes < 1:
            raise ValueError("max_passes must be at least 1")
        self.space = space
        self.predictor = predictor
        self.fail_safe = space.clamp(fail_safe)
        self.max_passes = max_passes
        self.obs = or_noop(obs)
        # Pre-bound series handles for the per-search telemetry: the
        # registry lookup + label canonicalization happen once here
        # instead of on every search (no-ops under NOOP obs).
        registry = self.obs.registry
        self._m_searches = registry.counter(
            "repro_optimizer_searches_total", "Greedy hill-climb searches run"
        ).labelled()
        self._m_evaluations = registry.counter(
            "repro_optimizer_evaluations_total",
            "Predictor queries spent inside hill-climb searches",
        ).labelled()
        self._m_climb_steps = registry.counter(
            "repro_optimizer_climb_steps_total",
            "Accepted hill-climb moves by knob",
        )
        self._m_climb_by_knob: Dict[str, Any] = {}
        self._m_matrix_batches = registry.counter(
            "repro_optimizer_matrix_batches_total",
            "Columnar predictor batches issued by hill-climb searches",
        ).labelled()
        self._m_matrix_rows = registry.counter(
            "repro_optimizer_matrix_rows_total",
            "Table rows evaluated through the columnar predictor path",
        ).labelled()
        self._m_memo_hits = registry.counter(
            "repro_optimizer_memo_hits_total",
            "Predictor requests served from the per-search memo",
        ).labelled()
        self._m_lock = registry.lock
        self.use_matrix = use_matrix
        self.table = ConfigTable(space)
        self._fail_safe_index = self.table.index_of_config(self.fail_safe)
        # Whole-lattice estimate batches preloaded by a batched caller
        # (SessionManager.step_batch / optimize_kernel_batch), keyed by
        # counter vector.  Searches consult it before issuing their own
        # sweep; eval charging and telemetry are identical either way.
        self._preloaded: Dict[CounterVector, EstimateBatch] = {}

    @property
    def matrix_enabled(self) -> bool:
        """Whether searches will run on the columnar predictor path."""
        return self._matrix_path() is not None

    @property
    def lattice_key(self) -> Tuple:
        """Hashable identity of the search lattice.

        Two optimizers with equal keys sweep identical tables, so a
        batched caller may share one predictor sweep between them.
        """
        space = self.space
        return (
            tuple(space.cpu_axis),
            tuple(space.nb_axis),
            tuple(space.gpu_axis),
            tuple(space.cu_axis),
        )

    def sweep_many(
        self, counters_list: Sequence[CounterVector]
    ) -> List[EstimateBatch]:
        """One whole-lattice estimate batch per counter vector.

        Uses the predictor's stacked ``estimate_matrix_many`` when it
        has one, else one ``estimate_matrix`` call per vector.  No
        evaluations are charged here — charging happens when a search
        consumes rows, exactly as on the lazy path.

        Raises:
            RuntimeError: If the columnar path is disabled or absent.
        """
        matrix_fn = self._matrix_path()
        if matrix_fn is None:
            raise RuntimeError("sweep_many requires the columnar predictor path")
        many = getattr(self.predictor, "estimate_matrix_many", None)
        if many is not None:
            return list(many(list(counters_list), self.table))
        return [matrix_fn(counters, self.table) for counters in counters_list]

    # repro-lint: acquires-on-receiver=clear_preload
    def preload_lattice(
        self, batches: Dict[CounterVector, EstimateBatch]
    ) -> None:
        """Install whole-lattice sweeps for upcoming searches to reuse.

        A no-op when the columnar path is disabled (the scalar baseline
        must keep its exact call shapes).  Callers pair this with
        :meth:`clear_preload` in a ``try``/``finally``.
        """
        if self._matrix_path() is None:
            return
        self._preloaded.update(batches)

    def clear_preload(self) -> None:
        """Drop all preloaded lattice sweeps."""
        self._preloaded.clear()

    def _matrix_path(
        self,
    ) -> Optional[Callable[..., EstimateBatch]]:
        """The predictor's columnar interface, or ``None`` when opted
        out / absent (duck-typed scalar-only predictors)."""
        if not self.use_matrix:
            return None
        return getattr(self.predictor, "estimate_matrix", None)

    def _failsafe_estimate(self, record: KernelRecord) -> KernelEstimate:
        """One predictor query at the fail-safe configuration.

        Shared by the fail paths and the window reserve accounting; the
        caller charges the evaluation.
        """
        matrix_fn = self._matrix_path()
        if matrix_fn is not None:
            preloaded = self._preloaded.get(record.counters)
            if preloaded is not None:
                return preloaded.estimate(self._fail_safe_index)
            batch = matrix_fn(
                record.counters, self.table,
                np.asarray([self._fail_safe_index], dtype=np.intp),
            )
            return batch.estimate(0)
        return self.predictor.estimate(record.counters, self.fail_safe)

    # ----- single kernel -------------------------------------------------------

    def optimize_kernel(self, record: KernelRecord,
                        tracker: PerformanceTracker) -> OptimizationResult:
        """Find a low-energy configuration meeting the throughput target.

        Args:
            record: Stored knowledge of the kernel (counters and
                expected instruction count).
            tracker: Throughput state; Equation 5's headroom is derived
                from it.  Not modified.

        Returns:
            The optimization outcome, including the evaluation count
            that the simulator converts into overhead.
        """
        evals = 0
        climb_steps: Dict[str, int] = {}
        stats = {"batches": 0, "rows": 0, "memo_hits": 0}
        table = self.table
        matrix_fn = self._matrix_path()

        # The whole search runs on flat table indices; configurations
        # are materialized only for the returned result.  Every fetch
        # charges one evaluation per requested index — the same budget
        # the scalar protocol spends — regardless of the speculative
        # lattice sweep, so overhead accounting is unchanged.
        if matrix_fn is not None:
            # One columnar sweep covers the whole lattice, so the
            # dozens of tiny probe/climb batches a search issues all
            # become row lookups.  Per-row forest traversal is
            # independent, so each looked-up estimate is float-for-float
            # what the equivalent small batch would have produced.
            full: Optional[EstimateBatch] = None
            memo: Dict[int, KernelEstimate] = {}

            def fetch_many(indices: Sequence[int]) -> List[KernelEstimate]:
                nonlocal evals, full
                evals += len(indices)
                if full is None:
                    # A batched caller may have preloaded this kernel's
                    # whole-lattice sweep; rows are float-identical to
                    # an own sweep, and the batch/row telemetry charges
                    # exactly as if the sweep ran here.
                    full = self._preloaded.get(record.counters)
                    if full is None:
                        full = matrix_fn(record.counters, table)
                    stats["batches"] += 1
                    stats["rows"] += len(full)
                out = []
                for index in indices:
                    est = memo.get(index)
                    if est is None:
                        memo[index] = est = full.estimate(index)
                    else:
                        stats["memo_hits"] += 1
                    out.append(est)
                return out

            def fetch_one(index: int) -> KernelEstimate:
                return fetch_many((index,))[0]
        else:
            # Scalar fallback: the pre-columnar call shapes, verbatim.
            def fetch_many(indices: Sequence[int]) -> List[KernelEstimate]:
                nonlocal evals
                evals += len(indices)
                return self.predictor.estimate_batch(
                    record.counters, [table.config_at(i) for i in indices]
                )

            def fetch_one(index: int) -> KernelEstimate:
                nonlocal evals
                evals += 1
                return self.predictor.estimate(
                    record.counters, table.config_at(index)
                )

        def feasible(est: KernelEstimate) -> bool:
            return tracker.admits(record.instructions, est.time_s)

        current_index = self._fail_safe_index
        current_est = fetch_one(current_index)

        # Rank knobs by predicted energy sensitivity: |ΔE| across the
        # knob's full axis, per configuration step.  Both endpoint probes
        # of every knob go to the predictor as one batch.
        probe_knobs = [
            knob for knob in Knob.ALL if table.axis_length(knob) >= 2
        ]
        probes = fetch_many(
            [
                table.set_knob(current_index, knob, position)
                for knob in probe_knobs
                for position in (0, table.axis_length(knob) - 1)
            ]
        )
        sensitivities: List[Tuple[float, str]] = []
        for index, knob in enumerate(probe_knobs):
            low, high = probes[2 * index], probes[2 * index + 1]
            delta = abs(high.energy_j - low.energy_j) / (table.axis_length(knob) - 1)
            sensitivities.append((delta, knob))
        sensitivities.sort(key=lambda item: -item[0])

        best_feasible: Optional[Tuple[int, KernelEstimate]] = (
            (current_index, current_est) if feasible(current_est) else None
        )

        # Sweep the knobs in sensitivity order; repeat the sweep until a
        # whole pass makes no move (knobs interact — e.g. a lower NB
        # state only pays off after the GPU clock moves), bounded by
        # max_passes to keep the evaluation count small and predictable.
        for _ in range(self.max_passes):
            moved = False
            for _, knob in sensitivities:
                # Pick the climb direction: the feasible neighbour with
                # the larger energy reduction.  Both neighbours are
                # estimated in one predictor batch.
                steps = [
                    (d, nxt)
                    for d in (-1, +1)
                    if (nxt := table.step_index(current_index, knob, d)) is not None
                ]
                estimates = fetch_many([nxt for _, nxt in steps])
                neighbour_est = {
                    d: (nxt, est)
                    for (d, nxt), est in zip(steps, estimates)
                }
                direction = 0
                best_gain = 1e-12
                for d, (nxt, est) in neighbour_est.items():
                    if feasible(est) and current_est.energy_j - est.energy_j > best_gain:
                        best_gain = current_est.energy_j - est.energy_j
                        direction = d
                if direction == 0:
                    # No energy-reducing feasible neighbour; but if we
                    # are still infeasible, move toward feasibility.
                    if best_feasible is None:
                        for d, (nxt, est) in neighbour_est.items():
                            if feasible(est):
                                current_index, current_est = nxt, est
                                best_feasible = (current_index, current_est)
                                climb_steps[knob] = climb_steps.get(knob, 0) + 1
                                moved = True
                                break
                    continue

                current_index, current_est = neighbour_est[direction]
                best_feasible = (current_index, current_est)
                climb_steps[knob] = climb_steps.get(knob, 0) + 1
                moved = True
                # Keep climbing until the energy increases (paper: "the
                # search stops once the energy increases") or we fall
                # off the axis or out of feasibility.
                while True:
                    nxt = table.step_index(current_index, knob, direction)
                    if nxt is None:
                        break
                    est = fetch_one(nxt)
                    if not feasible(est) or est.energy_j >= current_est.energy_j:
                        break
                    current_index, current_est = nxt, est
                    best_feasible = (current_index, current_est)
                    climb_steps[knob] = climb_steps.get(knob, 0) + 1
            if not moved:
                break

        if best_feasible is None:
            fail_est = fetch_one(self._fail_safe_index)
            if self.obs.enabled:
                self._record_search(evals, climb_steps, stats)
            return OptimizationResult(
                config=self.fail_safe, estimate=fail_est,
                evaluations=evals, fail_safe=True,
            )

        if self.obs.enabled:
            self._record_search(evals, climb_steps, stats)
        chosen_index, est = best_feasible
        return OptimizationResult(
            config=table.config_at(chosen_index), estimate=est,
            evaluations=evals, fail_safe=False,
        )

    def _record_search(self, evals: int, climb_steps: Dict[str, int],
                       stats: Optional[Dict[str, int]] = None) -> None:
        """Emit one search's step/evaluation telemetry (obs enabled).

        The span is resolved once and written directly (each
        ``tracer.inc`` call re-walks the thread-local span stack), and
        all counter bumps happen under one registry-lock hold — this
        runs once per search on the decision hot path.
        """
        span = self.obs.tracer.current()
        total_steps = sum(climb_steps.values())
        if span is not None:
            span.inc("hill_climb_steps", total_steps)
        by_knob = self._m_climb_by_knob
        # ``sorted`` keeps the span-attribute insertion order (and so
        # the exported trace bytes) independent of climb order.
        knobs = sorted(climb_steps)
        for knob in knobs:
            if span is not None:
                span.inc(_climb_step_key(knob), climb_steps[knob])
            if knob not in by_knob:
                by_knob[knob] = self._m_climb_steps.labelled(knob=knob)
        matrix = stats is not None and self._matrix_path() is not None
        if matrix and span is not None:
            # Columnar-path telemetry: how many predictor batches the
            # search issued, how many table rows they covered, and how
            # many requests the per-search memo absorbed.
            span.inc("matrix_batches", stats["batches"])
            span.inc("matrix_rows", stats["rows"])
            span.inc("memo_hits", stats["memo_hits"])
        with self._m_lock:
            self._m_searches.inc_unlocked()
            self._m_evaluations.inc_unlocked(evals)
            for knob in knobs:
                by_knob[knob].inc_unlocked(climb_steps[knob])
            if matrix:
                self._m_matrix_batches.inc_unlocked(stats["batches"])
                self._m_matrix_rows.inc_unlocked(stats["rows"])
                self._m_memo_hits.inc_unlocked(stats["memo_hits"])

    def optimize_kernel_batch(
        self,
        cases: Sequence[Tuple[KernelRecord, PerformanceTracker]],
    ) -> List[OptimizationResult]:
        """Optimize many independent kernels from one stacked sweep.

        All distinct counter vectors in the batch are swept in a single
        ``estimate_matrix_many`` call and preloaded, then each case runs
        the ordinary :meth:`optimize_kernel` against its own tracker —
        results, evaluation charges, and telemetry are identical to
        per-case calls.  This is the multi-session decision hot path
        benchmarked by ``repro bench decide``'s ``batched`` backend.

        Args:
            cases: ``(record, tracker)`` pairs; trackers not modified.

        Returns:
            One :class:`OptimizationResult` per case, in order.
        """
        cases = list(cases)
        if not cases or self._matrix_path() is None:
            return [
                self.optimize_kernel(record, tracker)
                for record, tracker in cases
            ]
        unique: Dict[CounterVector, None] = {}
        for record, _ in cases:
            if record.counters not in self._preloaded:
                unique.setdefault(record.counters)
        if unique:
            self.preload_lattice(
                dict(zip(unique, self.sweep_many(list(unique))))
            )
        try:
            return [
                self.optimize_kernel(record, tracker)
                for record, tracker in cases
            ]
        finally:
            self.clear_preload()

    def exhaustive_kernel_search(self, record: KernelRecord,
                                 tracker: PerformanceTracker) -> OptimizationResult:
        """Reference: evaluate every configuration in the space.

        The comparator behind the paper's search-cost claim — greedy
        hill climbing needs ``|cpu| + |nb| + |gpu| + |cu|`` evaluations
        instead of the ``|cpu| x |nb| x |gpu| x |cu|`` of this
        exhaustive sweep, "a factor of 19x".  Only used for validation
        and the search-cost experiment; the runtime system always uses
        :meth:`optimize_kernel`.
        """
        matrix_fn = self._matrix_path()
        if matrix_fn is not None:
            # One columnar evaluation over the whole lattice; the
            # selection scan works on the float columns directly.
            batch = matrix_fn(record.counters, self.table)
            evals = len(self.table)
            times = batch.times_s
            energies = batch.energy_j
            best_index: Optional[int] = None
            best_energy = 0.0
            for i in range(len(batch)):
                if not tracker.admits(record.instructions, float(times[i])):
                    continue
                energy = float(energies[i])
                if best_index is None or energy < best_energy:
                    best_index, best_energy = i, energy
            if best_index is None:
                return OptimizationResult(
                    config=self.fail_safe,
                    estimate=self._failsafe_estimate(record),
                    evaluations=evals + 1, fail_safe=True,
                )
            return OptimizationResult(
                config=self.table.config_at(best_index),
                estimate=batch.estimate(best_index),
                evaluations=evals, fail_safe=False,
            )

        configs = self.space.all_configs()
        estimates = self.predictor.estimate_batch(record.counters, configs)
        evals = len(configs)
        best: Optional[Tuple[HardwareConfig, KernelEstimate]] = None
        for config, estimate in zip(configs, estimates):
            if not tracker.admits(record.instructions, estimate.time_s):
                continue
            if best is None or estimate.energy_j < best[1].energy_j:
                best = (config, estimate)
        if best is None:
            fail_est = self.predictor.estimate(record.counters, self.fail_safe)
            return OptimizationResult(
                config=self.fail_safe, estimate=fail_est,
                evaluations=evals + 1, fail_safe=True,
            )
        return OptimizationResult(
            config=best[0], estimate=best[1], evaluations=evals, fail_safe=False,
        )

    # ----- MPC window ------------------------------------------------------------

    def optimize_window(
        self,
        window: Sequence[KernelRecord],
        tracker: PerformanceTracker,
        reserved: Sequence[KernelRecord] = (),
        reserve_window: bool = True,
    ) -> OptimizationResult:
        """Optimize a search-ordered window; return the last kernel's result.

        The window lists the kernels in optimization (search) order,
        ending with the kernel about to execute.  Each kernel is
        optimized against the running throughput state and its expected
        instructions/time are committed before moving on — headroom
        created by one kernel carries to the next, exactly the paper's
        worked example of Figure 7.

        Equation 3's constraint spans the *whole* prediction window, so
        window members that have not been optimized yet (and any
        ``reserved`` members that will only be optimized on a later
        shift of the horizon) are accounted at their fail-safe
        estimates: a kernel may only take slack that the rest of the
        window can still repay at full speed.  This is also what lets
        the optimizer *grant* slack against future high-throughput
        kernels — the paper's kmeans scenario.

        Args:
            window: Kernel records in search order; must be non-empty.
                The final entry is the kernel to be launched now.
            tracker: Live throughput state; not modified.
            reserved: Window-range kernels outside the optimization
                prefix (they execute within the horizon but are decided
                on a later shift).
            reserve_window: Ablation switch — when ``False``, no
                fail-safe reserve is held at all and kernels are only
                accounted as they commit (per-kernel constraints).

        Returns:
            The result for the final (current) kernel, with the
            evaluation count summed over the whole window.
        """
        if not window:
            raise ValueError("window must contain at least the current kernel")
        speculative = tracker.copy()
        total_evals = 0

        # Fail-safe reserve for everything in the window that has not
        # been committed yet (one predictor query per member).
        reserve_time = 0.0
        reserve_insts = 0.0
        pending: dict = {}
        to_reserve = list(window[:-1]) + list(reserved) if reserve_window else []
        for record in to_reserve:
            estimate = self._failsafe_estimate(record)
            total_evals += 1
            pending[id(record)] = (record.instructions, estimate.time_s)
            reserve_time += estimate.time_s
            reserve_insts += record.instructions
        speculative.update(reserve_insts, reserve_time)

        result: Optional[OptimizationResult] = None
        for record in window:
            if id(record) in pending:
                insts, time_s = pending.pop(id(record))
                speculative.adjust(-insts, -time_s)
            result = self.optimize_kernel(record, speculative)
            total_evals += result.evaluations
            speculative.update(record.instructions, result.estimate.time_s)

        assert result is not None
        return OptimizationResult(
            config=result.config,
            estimate=result.estimate,
            evaluations=total_evals,
            fail_safe=result.fail_safe,
        )

    def optimize_window_backtracking(
        self,
        window: Sequence[KernelRecord],
        tracker: PerformanceTracker,
        max_combinations: int = 2_000_000,
    ) -> OptimizationResult:
        """Exact window optimization by exhaustive backtracking.

        The comparator the paper rules out for runtime use: jointly
        enumerate every configuration assignment over the window
        (``M^H`` combinations) and keep the minimum-energy assignment
        whose members all satisfy the running throughput constraint in
        *execution* order.  Exponential — usable only for validating
        the polynomial heuristic on small instances and for the
        paper's "65x search cost" comparison.

        Args:
            window: Kernel records in **execution** order; the first
                entry is the kernel about to launch.
            tracker: Live throughput state; not modified.
            max_combinations: Safety bound on ``M^H``.

        Returns:
            The result for the first (current) kernel under the jointly
            optimal assignment, with the full enumeration's evaluation
            count.

        Raises:
            ValueError: If the window is empty or the enumeration would
                exceed ``max_combinations``.
        """
        if not window:
            raise ValueError("window must contain at least the current kernel")
        configs = self.space.all_configs()
        combinations = len(configs) ** len(window)
        if combinations > max_combinations:
            raise ValueError(
                f"{combinations} combinations exceed the "
                f"{max_combinations} safety bound; shrink the window or "
                "the configuration space"
            )

        # Pre-evaluate each (kernel, config) pair once, one predictor
        # batch (columnar when available) per kernel.
        matrix_fn = self._matrix_path()
        estimates: List[List[KernelEstimate]] = []
        evals = 0
        for record in window:
            if matrix_fn is not None:
                estimates.append(
                    matrix_fn(record.counters, self.table).to_estimates()
                )
            else:
                estimates.append(
                    self.predictor.estimate_batch(record.counters, configs)
                )
            evals += len(configs)

        best_energy = None
        best_first: Optional[Tuple[HardwareConfig, KernelEstimate]] = None
        base_insts = tracker.instructions
        base_time = tracker.time_s
        target = tracker.target_throughput

        for assignment in itertools.product(range(len(configs)), repeat=len(window)):
            insts = base_insts
            time_s = base_time
            energy = 0.0
            feasible = True
            for position, config_index in enumerate(assignment):
                estimate = estimates[position][config_index]
                insts += window[position].instructions
                time_s += estimate.time_s
                energy += estimate.energy_j
                if insts / time_s < target:
                    feasible = False
                    break
            if not feasible:
                continue
            if best_energy is None or energy < best_energy:
                best_energy = energy
                first_index = assignment[0]
                best_first = (configs[first_index], estimates[0][first_index])

        if best_first is None:
            fail_est = self._failsafe_estimate(window[0])
            return OptimizationResult(
                config=self.fail_safe, estimate=fail_est,
                evaluations=evals + 1, fail_safe=True,
            )
        return OptimizationResult(
            config=best_first[0], estimate=best_first[1],
            evaluations=evals, fail_safe=False,
        )
