"""Workloads: kernels, counters, applications, and benchmark suites.

Provides the ground-truth kernel descriptions
(:mod:`~repro.workloads.kernel`), the synthetic Table-III performance
counters (:mod:`~repro.workloads.counters`), application launch
sequences (:mod:`~repro.workloads.app`), the 15 Table-IV evaluation
benchmarks (:mod:`~repro.workloads.suites`), and the synthetic training
population (:mod:`~repro.workloads.generator`).
"""

from repro.workloads.app import Application, Category
from repro.workloads.counters import COUNTER_NAMES, CounterSynthesizer, CounterVector
from repro.workloads.extended import (
    EXTENDED_BENCHMARK_NAMES,
    extended_benchmark,
    extended_benchmarks,
)
from repro.workloads.generator import KernelPopulationGenerator, training_population
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.stats import CorpusStats, corpus_stats
from repro.workloads.suites import (
    BENCHMARK_NAMES,
    TABLE_II_PATTERNS,
    all_benchmarks,
    benchmark,
    benchmarks_by_category,
)

__all__ = [
    "Application",
    "Category",
    "COUNTER_NAMES",
    "CounterSynthesizer",
    "CounterVector",
    "KernelPopulationGenerator",
    "training_population",
    "KernelSpec",
    "ScalingClass",
    "BENCHMARK_NAMES",
    "TABLE_II_PATTERNS",
    "all_benchmarks",
    "benchmark",
    "benchmarks_by_category",
    "EXTENDED_BENCHMARK_NAMES",
    "extended_benchmark",
    "extended_benchmarks",
    "CorpusStats",
    "corpus_stats",
]

# The traces subpackage (repro.workloads.traces) is *not* re-exported
# here: it builds on the runtime and core layers, which import these
# leaf modules — import it explicitly where needed.
