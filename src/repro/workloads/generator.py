"""Synthetic kernel population for offline model training.

The paper trains its Random Forest on "several benchmark suites" (73
benchmarks across 9 suites) characterized at 336 hardware
configurations, then evaluates on the 15 Table-IV benchmarks.  We have
no 73-benchmark corpus, so this module generates a seeded population of
synthetic kernels spanning the same four scaling classes, with parameter
ranges that cover — but do not exactly hit — the evaluation kernels.

Training on this population and evaluating on the Table-IV kernels
yields realistic out-of-sample prediction errors, which is what the
paper's 25% (performance) / 12% (power) MAPE figures reflect.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.kernel import KernelSpec, ScalingClass

__all__ = ["KernelPopulationGenerator", "training_population"]


class KernelPopulationGenerator:
    """Samples random-but-plausible kernels of each scaling class.

    Args:
        seed: Seed of the sampling stream; a given seed always produces
            the same population.
    """

    def __init__(self, seed: int = 7) -> None:
        self._rng = np.random.default_rng(seed)

    def _loguniform(self, low: float, high: float) -> float:
        return float(np.exp(self._rng.uniform(np.log(low), np.log(high))))

    def sample(self, scaling_class: Optional[ScalingClass] = None,
               index: int = 0) -> KernelSpec:
        """Sample one kernel spec.

        Args:
            scaling_class: Class to sample from; random if ``None``.
            index: Sequence number, used only to name the kernel.

        Returns:
            A new :class:`KernelSpec`.
        """
        rng = self._rng
        if scaling_class is None:
            scaling_class = ScalingClass(
                rng.choice([c.value for c in ScalingClass])
            )
        name = f"train_{scaling_class.value}_{index}"

        if scaling_class is ScalingClass.COMPUTE:
            return KernelSpec(
                name=name, scaling_class=scaling_class,
                compute_work=self._loguniform(0.5, 40.0),
                memory_traffic=self._loguniform(0.02, 0.5),
                parallel_fraction=rng.uniform(0.93, 0.999),
                compute_efficiency=rng.uniform(0.65, 0.95),
            )
        if scaling_class is ScalingClass.MEMORY:
            return KernelSpec(
                name=name, scaling_class=scaling_class,
                compute_work=self._loguniform(0.1, 4.0),
                memory_traffic=self._loguniform(0.15, 3.5),
                parallel_fraction=rng.uniform(0.8, 0.95),
                compute_efficiency=rng.uniform(0.6, 0.9),
                serial_time_s=float(rng.choice([0.0, 0.002])),
            )
        if scaling_class is ScalingClass.PEAK:
            return KernelSpec(
                name=name, scaling_class=scaling_class,
                compute_work=self._loguniform(1.0, 12.0),
                memory_traffic=self._loguniform(0.2, 1.2),
                parallel_fraction=rng.uniform(0.9, 0.98),
                compute_efficiency=rng.uniform(0.65, 0.85),
                cache_interference=rng.uniform(0.15, 0.7),
                cache_sweet_spot_cu=int(rng.choice([2, 4, 6])),
            )
        return KernelSpec(
            name=name, scaling_class=scaling_class,
            compute_work=self._loguniform(0.05, 1.5),
            memory_traffic=self._loguniform(0.02, 0.4),
            parallel_fraction=rng.uniform(0.6, 0.85),
            compute_efficiency=rng.uniform(0.6, 0.9),
            serial_time_s=self._loguniform(0.002, 0.08),
        )

    def population(self, size: int,
                   class_mix: Optional[Sequence[float]] = None) -> List[KernelSpec]:
        """Sample a population of kernels.

        Args:
            size: Number of kernels to generate.
            class_mix: Optional probabilities for (compute, memory,
                peak, unscalable); defaults to a mix weighted toward the
                common compute/memory classes.

        Returns:
            The sampled kernel specs.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        mix = np.asarray(class_mix if class_mix is not None else [0.3, 0.3, 0.25, 0.15])
        if mix.shape != (4,) or not np.isclose(mix.sum(), 1.0):
            raise ValueError("class_mix must be 4 probabilities summing to 1")
        classes = list(ScalingClass)
        picks = self._rng.choice(4, size=size, p=mix)
        return [self.sample(classes[int(c)], index=i) for i, c in enumerate(picks)]


def training_population(size: int = 64, seed: int = 7) -> List[KernelSpec]:
    """Convenience wrapper: the default offline training population."""
    return KernelPopulationGenerator(seed=seed).population(size)
