"""Synthetic GPU performance counters (the paper's Table III).

The paper's runtime identifies kernels and feeds its Random Forest
predictor with eight GPU performance counters captured by AMD CodeXL.
We synthesize the same eight counters from each kernel's ground-truth
characteristics, measured at a fixed reference configuration (the
fastest GPU configuration, as a profiler would see on first encounter).

The synthesis is deliberately *lossy*: counters expose what a profiler
could plausibly observe (work size, ALU/fetch instruction mixes, stall
and hit percentages) but not the latent model parameters (Amdahl
fraction, cache sweet spot).  The Random Forest therefore has realistic,
imperfect information — the source of the paper's 25%/12% MAPE.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.hardware.perf import TimingModel
from repro.workloads.kernel import KernelSpec

__all__ = ["COUNTER_NAMES", "CounterVector", "CounterSynthesizer"]

#: The eight selected counters, in Table III order.
COUNTER_NAMES: Tuple[str, ...] = (
    "GlobalWorkSize",
    "MemUnitStalled",
    "CacheHit",
    "VFetchInsts",
    "ScratchRegs",
    "LDSBankConflict",
    "VALUInsts",
    "FetchSize",
)

#: Reference configuration the profiler captures counters at.
_REFERENCE_CONFIG = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)

#: Instructions one work-item executes, used to derive the work size.
_INSTS_PER_WORK_ITEM = 200.0


@dataclass(frozen=True)
class CounterVector:
    """One kernel's eight Table-III performance counters.

    Attributes mirror Table III; percentages are 0-100, sizes are in the
    units CodeXL reports (work-items, instructions per work-item, kB).
    """

    global_work_size: float
    mem_unit_stalled: float
    cache_hit: float
    vfetch_insts: float
    scratch_regs: float
    lds_bank_conflict: float
    valu_insts: float
    fetch_size: float

    def as_dict(self) -> Dict[str, float]:
        """Counters keyed by their Table III names."""
        return dict(zip(COUNTER_NAMES, self.as_array()))

    def as_array(self) -> np.ndarray:
        """Counters as a float vector in Table III order."""
        return np.array(
            [
                self.global_work_size,
                self.mem_unit_stalled,
                self.cache_hit,
                self.vfetch_insts,
                self.scratch_regs,
                self.lds_bank_conflict,
                self.valu_insts,
                self.fetch_size,
            ],
            dtype=float,
        )

    @classmethod
    def from_array(cls, values) -> "CounterVector":
        """Build a vector from eight floats in Table III order."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(COUNTER_NAMES),):
            raise ValueError(f"expected {len(COUNTER_NAMES)} counters, got {values.shape}")
        return cls(*values.tolist())

    def signature(self) -> Tuple[int, ...]:
        """Log-binned kernel signature (the paper's ``floor(log u)``).

        Kernels whose counters land in the same logarithmic bins are
        treated as the same kernel by the pattern extractor, which is
        how the paper approximates "kernels with similar performance".
        """
        bins = []
        for value in self.as_array():
            bins.append(int(math.floor(math.log(value))) if value > 0 else -1)
        return tuple(bins)

    def blended_with(self, other: "CounterVector", weight: float = 0.5) -> "CounterVector":
        """Exponential-moving-average update used by counter feedback.

        Args:
            other: Freshly observed counters.
            weight: Weight given to the fresh observation.

        Returns:
            The updated stored counters.
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        return CounterVector.from_array(
            (1.0 - weight) * self.as_array() + weight * other.as_array()
        )


class CounterSynthesizer:
    """Derives Table-III counters from ground-truth kernel specs.

    Args:
        timing: Timing model used to compute stall fractions at the
            reference configuration.
        noise: Relative standard deviation of multiplicative measurement
            noise applied per observation (0 disables noise).
        seed: Seed for the measurement-noise stream.
    """

    def __init__(self, timing: Optional[TimingModel] = None,
                 noise: float = 0.02, seed: int = 1234) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.timing = timing if timing is not None else TimingModel()
        self.noise = noise
        self.seed = seed

    def nominal(self, spec: KernelSpec) -> CounterVector:
        """Noise-free counters for a kernel at the reference config."""
        timing = self.timing.kernel_timing(spec, _REFERENCE_CONFIG)

        work_items = max(64.0, spec.instructions / _INSTS_PER_WORK_ITEM)

        busy = timing.compute_time_s + timing.memory_time_s
        mem_share = timing.memory_time_s / busy if busy > 0 else 0.0
        serial_share = (
            timing.serial_time_s / timing.total_time_s if timing.total_time_s > 0 else 0.0
        )
        mem_unit_stalled = 100.0 * mem_share * (1.0 - 0.4 * serial_share)

        # Cache hit rate falls with memory traffic per unit compute and
        # with shared-cache interference pressure.
        intensity = spec.arithmetic_intensity
        base_hit = 95.0 if math.isinf(intensity) else 95.0 * intensity / (intensity + 2.0)
        cache_hit = max(2.0, base_hit - 120.0 * spec.cache_interference)

        vfetch = (spec.memory_traffic * 1e9 / 64.0) / work_items  # 64 B lines
        valu = spec.compute_work * 1e9 / work_items

        # Register pressure loosely tracks per-item compute complexity.
        scratch = 4.0 + 10.0 * math.log1p(valu / 50.0)

        # LDS bank conflicts stand in for the serialization that limits
        # CU scaling (low Amdahl fraction => heavy conflicts).
        lds_conflict = 100.0 * (1.0 - spec.parallel_fraction) ** 0.5

        fetch_kb = spec.memory_traffic * 1e6  # GB -> kB

        return CounterVector(
            global_work_size=work_items,
            mem_unit_stalled=min(100.0, mem_unit_stalled),
            cache_hit=min(100.0, cache_hit),
            vfetch_insts=vfetch,
            scratch_regs=scratch,
            lds_bank_conflict=min(100.0, lds_conflict),
            valu_insts=valu,
            fetch_size=fetch_kb,
        )

    def observe(self, spec: KernelSpec, sequence: int = 0) -> CounterVector:
        """Counters as sampled at runtime, with measurement noise.

        The noise is a pure function of (seed, kernel, sequence) so that
        replaying the same launch sequence always observes the same
        counters, regardless of what else ran before — experiments stay
        reproducible and order-independent.

        Args:
            spec: The kernel that was launched.
            sequence: Position of the launch within its run (ties the
                noise draw to the launch, not to global call order).
        """
        nominal = self.nominal(spec).as_array()
        if self.noise == 0.0:
            return CounterVector.from_array(nominal)
        digest = hashlib.sha256(
            repr((self.seed, spec.key, sequence)).encode()
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        jitter = rng.normal(1.0, self.noise, size=nominal.shape)
        return CounterVector.from_array(np.clip(nominal * jitter, 0.0, None))
