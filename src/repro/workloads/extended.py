"""Extended benchmark collection beyond the 15 evaluated in the paper.

The paper samples its 15 evaluation benchmarks from a corpus of 73
across 9 suites ("75% are irregular and 44% of the kernels varied
significantly with input").  This module rebuilds a further slice of
that corpus — well-known kernels from the same suites, assigned
plausible scaling classes — for two uses:

* **robustness testing**: the manager must behave sanely (energy
  savings ≥ 0-ish, bounded performance loss) on workloads it was never
  tuned against;
* **an optional richer training corpus** when synthetic kernels alone
  are not wanted.

These are *not* the paper's evaluation set and are never used by the
figure reproductions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads.app import Application, Category, expand_pattern
from repro.workloads.kernel import KernelSpec, ScalingClass

__all__ = ["EXTENDED_BENCHMARK_NAMES", "extended_benchmark", "extended_benchmarks"]


def _k(name: str, cls: ScalingClass, wc: float, wm: float, **kw) -> KernelSpec:
    return KernelSpec(name=name, scaling_class=cls, compute_work=wc,
                      memory_traffic=wm, **kw)


def _regular(name: str, suite: str, kernel: KernelSpec, repeats: int) -> Application:
    return Application(
        name=name, suite=suite, category=Category.REGULAR,
        kernels=expand_pattern([(kernel, repeats)]), pattern=f"A{repeats}",
    )


def _triad() -> Application:
    # SHOC Triad: streaming bandwidth, swept over working-set sizes
    # (the benchmark's own size sweep makes it input-varying).
    base = _k("triad", ScalingClass.MEMORY, 0.4, 1.8,
              parallel_fraction=0.92, compute_efficiency=0.7)
    scales = [0.25, 0.5, 1.0, 2.0, 0.25, 0.5, 1.0, 2.0, 1.5, 0.75]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="Triad", suite="SHOC", category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A10 size sweep",
    )


def _fft() -> Application:
    # SHOC FFT: butterfly passes alternate with transposes.
    fft = _k("fft_radix4", ScalingClass.COMPUTE, 6.0, 0.8,
             parallel_fraction=0.97, compute_efficiency=0.75)
    transpose = _k("fft_transpose", ScalingClass.MEMORY, 0.3, 1.1,
                   parallel_fraction=0.9, compute_efficiency=0.7)
    return Application(
        name="FFT", suite="SHOC", category=Category.IRREGULAR_REPEATING,
        kernels=expand_pattern([(fft, 1), (transpose, 1)] * 5), pattern="(AB)5",
    )


def _md() -> Application:
    # SHOC MD (Lennard-Jones): compute-bound with neighbour-list reads.
    kernel = _k("lj_force", ScalingClass.COMPUTE, 14.0, 0.4,
                parallel_fraction=0.99, compute_efficiency=0.85)
    return _regular("MD", "SHOC", kernel, 8)


def _backprop() -> Application:
    # Rodinia backprop: alternating forward/weight-update kernels.
    fwd = _k("bpnn_layerforward", ScalingClass.COMPUTE, 3.5, 0.4,
             parallel_fraction=0.96, compute_efficiency=0.8)
    adj = _k("bpnn_adjust_weights", ScalingClass.MEMORY, 0.8, 1.0,
             parallel_fraction=0.9, compute_efficiency=0.7)
    return Application(
        name="backprop", suite="Rodinia", category=Category.IRREGULAR_REPEATING,
        kernels=expand_pattern([(fwd, 1), (adj, 1)] * 6), pattern="(AB)6",
    )


def _hotspot() -> Application:
    # Rodinia hotspot: pyramidal time-stepping — the processed block
    # shrinks with the pyramid height, so iterations vary with input.
    base = _k("hotspot_stencil", ScalingClass.PEAK, 4.5, 0.6,
              cache_interference=0.35, cache_sweet_spot_cu=6,
              parallel_fraction=0.95, compute_efficiency=0.75)
    scales = [1.0, 0.85, 0.7, 0.6, 1.0, 0.85, 0.7, 0.6, 1.0, 0.85, 0.7, 0.6]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="hotspot", suite="Rodinia",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="(A1A2A3A4)3 pyramid",
    )


def _nw() -> Application:
    # Rodinia Needleman-Wunsch: diagonal wavefront, small-large-small.
    base = _k("nw_diagonal", ScalingClass.COMPUTE, 1.4, 0.3,
              parallel_fraction=0.88, compute_efficiency=0.7)
    scales = [0.2, 0.45, 0.8, 1.3, 1.8, 2.0, 1.8, 1.3, 0.8, 0.45, 0.2]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="nw", suite="Rodinia", category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A11 wavefront",
    )


def _pathfinder() -> Application:
    # Rodinia pathfinder: short row-sweep kernels, launch-latency bound.
    kernel = _k("dynproc_kernel", ScalingClass.UNSCALABLE, 0.25, 0.12,
                serial_time_s=0.003, parallel_fraction=0.75)
    return _regular("pathfinder", "Rodinia", kernel, 18)


def _stencil() -> Application:
    # Parboil stencil: Jacobi sweeps alternate with halo packing.
    sweep = _k("stencil7pt", ScalingClass.MEMORY, 1.0, 1.4,
               parallel_fraction=0.93, compute_efficiency=0.72)
    halo = _k("halo_pack", ScalingClass.UNSCALABLE, 0.1, 0.08,
              serial_time_s=0.004, parallel_fraction=0.7)
    return Application(
        name="stencil", suite="Parboil", category=Category.IRREGULAR_REPEATING,
        kernels=expand_pattern([(sweep, 1), (halo, 1)] * 6), pattern="(AB)6",
    )


def _sgemm() -> Application:
    # Parboil SGEMM: the classic compute-bound tile kernel.
    kernel = _k("sgemm_tile", ScalingClass.COMPUTE, 24.0, 0.5,
                parallel_fraction=0.995, compute_efficiency=0.9)
    return _regular("sgemm", "Parboil", kernel, 6)


def _histo() -> Application:
    # Parboil histo: scatter with atomic contention; contention (and so
    # behaviour) depends on each input image's value distribution.
    base = _k("histo_main", ScalingClass.UNSCALABLE, 0.9, 0.5,
              serial_time_s=0.012, parallel_fraction=0.7,
              compute_efficiency=0.65)
    scales = [1.0, 0.4, 1.6, 0.7, 1.2, 0.5, 1.8, 0.9]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="histo", suite="Parboil",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A8 per-image",
    )


def _blackscholes() -> Application:
    # AMD APP SDK BlackScholes: embarrassingly parallel math.
    kernel = _k("blackscholes", ScalingClass.COMPUTE, 9.0, 0.3,
                parallel_fraction=0.995, compute_efficiency=0.88)
    return _regular("BlackScholes", "AMD APP SDK", kernel, 12)


def _dct() -> Application:
    # AMD APP SDK DCT: blocked transform with LDS reuse.
    kernel = _k("dct8x8", ScalingClass.PEAK, 5.0, 0.7,
                cache_interference=0.3, cache_sweet_spot_cu=6,
                parallel_fraction=0.96, compute_efficiency=0.8)
    return _regular("DCT", "AMD APP SDK", kernel, 9)


def _reduction() -> Application:
    # AMD APP SDK Reduction: tree reduction, shrinking work per pass.
    base = _k("reduce_pass", ScalingClass.MEMORY, 0.5, 0.9,
              parallel_fraction=0.85, compute_efficiency=0.7,
              serial_time_s=0.001)
    scales = [2.0, 1.0, 0.5, 0.25, 0.12, 0.06]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="Reduction", suite="AMD APP SDK",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A6 halving",
    )


def _sssp() -> Application:
    # Pannotia SSSP: frontier relaxation, jagged frontier sizes.
    base = _k("sssp_relax", ScalingClass.MEMORY, 0.7, 0.5,
              parallel_fraction=0.87, serial_time_s=0.002,
              compute_efficiency=0.68)
    scales = [0.1, 0.6, 0.25, 1.4, 0.5, 2.2, 1.0, 1.9, 0.8, 0.4]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="sssp", suite="Pannotia",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A10 frontier",
    )


def _nqueens() -> Application:
    # OpenDwarfs N-Queens: branch-and-bound, deepening then pruning.
    base = _k("nqueens_expand", ScalingClass.COMPUTE, 2.2, 0.15,
              parallel_fraction=0.9, compute_efficiency=0.7)
    scales = [0.3, 0.9, 2.0, 2.6, 1.6, 0.7, 0.25]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="nqueens", suite="OpenDwarfs",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A7",
    )


def _crc() -> Application:
    # OpenDwarfs CRC: streaming checksums over variable message sizes.
    base = _k("crc32_slice", ScalingClass.MEMORY, 0.6, 1.6,
              parallel_fraction=0.9, compute_efficiency=0.72)
    scales = [0.3, 1.5, 0.6, 2.0, 0.4, 1.1, 0.8, 1.7, 0.5, 1.3]
    kernels = [base.with_input(i + 1, work_scale=s) for i, s in enumerate(scales)]
    return Application(
        name="crc", suite="OpenDwarfs",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="A1..A10 messages",
    )


_BUILDERS: Dict[str, Callable[[], Application]] = {
    "Triad": _triad,
    "FFT": _fft,
    "MD": _md,
    "backprop": _backprop,
    "hotspot": _hotspot,
    "nw": _nw,
    "pathfinder": _pathfinder,
    "stencil": _stencil,
    "sgemm": _sgemm,
    "histo": _histo,
    "BlackScholes": _blackscholes,
    "DCT": _dct,
    "Reduction": _reduction,
    "sssp": _sssp,
    "nqueens": _nqueens,
    "crc": _crc,
}

#: Names of the extended (non-evaluation) benchmarks.
EXTENDED_BENCHMARK_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def extended_benchmark(name: str) -> Application:
    """Build one extended benchmark by name.

    Raises:
        KeyError: If the name is not in the extended collection.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown extended benchmark {name!r}; available: "
            f"{', '.join(EXTENDED_BENCHMARK_NAMES)}"
        ) from None
    return builder()


def extended_benchmarks() -> List[Application]:
    """All extended benchmarks."""
    return [extended_benchmark(name) for name in EXTENDED_BENCHMARK_NAMES]
