"""Applications: ordered sequences of GPU kernel invocations.

A GPGPU application, for power-management purposes, is the ordered list
of kernel launches it performs (Figure 1 of the paper: CPU phases
interleaved with GPU kernels; the paper — and this reproduction —
optimizes the GPU kernel phases).  The paper describes each benchmark's
launch sequence with a regular expression such as ``A10B10C10`` (Spmv)
or ``AB20`` (kmeans); :class:`Application` stores both the expanded
sequence and that pattern string.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.workloads.kernel import KernelSpec

__all__ = ["Category", "Application"]


class Category(enum.Enum):
    """Benchmark categories from Table IV."""

    REGULAR = "regular"
    IRREGULAR_REPEATING = "irregular w/ repeating pattern"
    IRREGULAR_NON_REPEATING = "irregular w/ non-repeating pattern"
    IRREGULAR_INPUT_VARYING = "irregular w/ kernels varying with input"

    @property
    def is_regular(self) -> bool:
        """Whether this category is the paper's "regular" class."""
        return self is Category.REGULAR


@dataclass(frozen=True)
class Application:
    """One GPGPU application: a named sequence of kernel launches.

    Attributes:
        name: Benchmark name, e.g. ``"Spmv"``.
        suite: Originating benchmark suite, e.g. ``"SHOC"``.
        category: Table IV category of the benchmark.
        kernels: The launch sequence, one :class:`KernelSpec` per
            invocation, in execution order.
        pattern: The paper's regular-expression description of the
            sequence (``"A10B10C10"``), for reporting.
    """

    name: str
    suite: str
    category: Category
    kernels: Tuple[KernelSpec, ...]
    pattern: str = ""

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("application must launch at least one kernel")
        object.__setattr__(self, "kernels", tuple(self.kernels))
        # A kernel key must denote one behaviour: everything downstream
        # (the TO solver, the pattern store) groups launches by key.
        by_key: Dict[str, KernelSpec] = {}
        for spec in self.kernels:
            first = by_key.setdefault(spec.key, spec)
            if first != spec:
                raise ValueError(
                    f"kernels with key {spec.key!r} differ; give distinct "
                    "inputs distinct input_id values"
                )

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self) -> Iterator[KernelSpec]:
        return iter(self.kernels)

    @property
    def num_invocations(self) -> int:
        """Number of kernel launches (the paper's N)."""
        return len(self.kernels)

    @property
    def unique_kernels(self) -> List[KernelSpec]:
        """Distinct (kernel, input) identities, in first-seen order."""
        seen: Dict[str, KernelSpec] = {}
        for spec in self.kernels:
            seen.setdefault(spec.key, spec)
        return list(seen.values())

    @property
    def total_instructions(self) -> float:
        """Total instructions across all launches (the paper's I_total)."""
        return sum(spec.instructions for spec in self.kernels)

    def letter_sequence(self) -> List[str]:
        """Kernel identities mapped to letters A, B, C... in first-seen order.

        Useful for checking an application against its declared pattern.
        """
        letters: Dict[str, str] = {}
        out = []
        for spec in self.kernels:
            base = spec.name
            if base not in letters:
                letters[base] = chr(ord("A") + len(letters))
            out.append(letters[base])
        return out

    def __str__(self) -> str:
        return f"Application({self.name}, N={self.num_invocations}, pattern={self.pattern})"


def expand_pattern(segments: Sequence[Tuple[KernelSpec, int]]) -> List[KernelSpec]:
    """Expand (kernel, repeat-count) segments into a launch sequence.

    Args:
        segments: Sequence of ``(spec, count)`` pairs.

    Returns:
        The flattened launch list.
    """
    sequence: List[KernelSpec] = []
    for spec, count in segments:
        if count <= 0:
            raise ValueError(f"repeat count must be positive, got {count}")
        sequence.extend([spec] * count)
    return sequence
