"""Corpus statistics over benchmark collections.

The paper characterizes its corpus before sampling the evaluation set:
"Within the 73 benchmarks we studied, we found that 75% are irregular
and 44% of the kernels varied significantly with input" (Section V-A).
This module computes the same statistics over any collection of
:class:`~repro.workloads.app.Application` objects, so the reproduction's
combined corpus (evaluation + extended) can be checked against the
paper's distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.workloads.app import Application, Category
from repro.workloads.kernel import ScalingClass

__all__ = ["CorpusStats", "corpus_stats"]


@dataclass(frozen=True)
class CorpusStats:
    """Aggregate statistics of a benchmark collection.

    Attributes:
        num_benchmarks: Collection size.
        irregular_fraction: Share of benchmarks in any irregular
            category (the paper reports 75%).
        input_varying_fraction: Share of benchmarks whose kernels vary
            with input (the paper reports 44% of kernels; we report the
            benchmark-level share).
        category_counts: Benchmarks per Table-IV category.
        scaling_class_counts: Kernel launches per scaling class.
        mean_launches: Mean kernel launches per benchmark.
        mean_unique_kernels: Mean distinct kernels per benchmark.
    """

    num_benchmarks: int
    irregular_fraction: float
    input_varying_fraction: float
    category_counts: Dict[str, int]
    scaling_class_counts: Dict[str, int]
    mean_launches: float
    mean_unique_kernels: float


def corpus_stats(apps: Sequence[Application]) -> CorpusStats:
    """Compute corpus statistics for a benchmark collection.

    Args:
        apps: The benchmarks to characterize.

    Returns:
        The aggregate statistics.

    Raises:
        ValueError: If the collection is empty.
    """
    if not apps:
        raise ValueError("corpus must contain at least one benchmark")

    categories: Counter = Counter(app.category.value for app in apps)
    classes: Counter = Counter()
    launches = 0
    unique = 0
    irregular = 0
    input_varying = 0
    for app in apps:
        if app.category is not Category.REGULAR:
            irregular += 1
        if app.category is Category.IRREGULAR_INPUT_VARYING:
            input_varying += 1
        launches += len(app)
        unique += len(app.unique_kernels)
        for spec in app.kernels:
            classes[spec.scaling_class.value] += 1

    n = len(apps)
    return CorpusStats(
        num_benchmarks=n,
        irregular_fraction=irregular / n,
        input_varying_fraction=input_varying / n,
        category_counts=dict(categories),
        scaling_class_counts=dict(classes),
        mean_launches=launches / n,
        mean_unique_kernels=unique / n,
    )
