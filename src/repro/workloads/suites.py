"""The 15 evaluation benchmarks of the paper's Table IV.

Each benchmark is rebuilt as an :class:`~repro.workloads.app.Application`:
a sequence of kernel launches whose *pattern* matches the paper's
regular-expression description (Tables II and IV) and whose per-kernel
scaling classes reproduce the throughput-phase shapes of Figure 3 and
the behaviours called out in the text:

* **Spmv** (``A10B10C10``) transitions from high- to low-throughput
  phases twice; its kernels are short, making it the worst case for
  optimizer overhead (Figure 14).
* **kmeans** (``AB20``) opens with one dominating low-throughput swap
  kernel, then iterates a high-throughput kernel — the case where PPK
  irrecoverably overshoots.
* **hybridsort** runs six different kernels, with ``mergeSortPass``
  iterating nine times on shrinking inputs (``F1..F9``).
* **lbm**'s kernels exhibit "peak" behaviour (fastest and most efficient
  below the maximum CU count), giving the largest GPU-side savings.
* **srad**'s late iterations drift outside the behaviour its early
  profile (and the offline model's training population) describes,
  reproducing the paper's worst-case late-phase misprediction.

Ground-truth magnitudes are calibrated against the modelled APU's
baseline configuration so that per-launch times land in the paper's
regime (roughly 5-100 ms).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.workloads.app import Application, Category, expand_pattern
from repro.workloads.kernel import KernelSpec, ScalingClass

__all__ = [
    "BENCHMARK_NAMES",
    "benchmark",
    "all_benchmarks",
    "benchmarks_by_category",
    "TABLE_II_PATTERNS",
]

#: Table II of the paper: execution patterns of three irregular benchmarks.
TABLE_II_PATTERNS: Mapping[str, str] = {
    "Spmv": "A10B10C10",
    "kmeans": "AB20",
    "hybridsort": "ABCDEF1F2F3F4F5F6F7F8F9G",
}


def _compute(name: str, wc: float, wm: float, *, p: float = 0.99,
             eff: float = 0.8, **kw) -> KernelSpec:
    return KernelSpec(name=name, scaling_class=ScalingClass.COMPUTE,
                      compute_work=wc, memory_traffic=wm,
                      parallel_fraction=p, compute_efficiency=eff, **kw)


def _memory(name: str, wc: float, wm: float, *, p: float = 0.9,
            eff: float = 0.7, **kw) -> KernelSpec:
    return KernelSpec(name=name, scaling_class=ScalingClass.MEMORY,
                      compute_work=wc, memory_traffic=wm,
                      parallel_fraction=p, compute_efficiency=eff, **kw)


def _peak(name: str, wc: float, wm: float, *, interference: float = 0.5,
          sweet: int = 4, p: float = 0.95, eff: float = 0.75, **kw) -> KernelSpec:
    return KernelSpec(name=name, scaling_class=ScalingClass.PEAK,
                      compute_work=wc, memory_traffic=wm,
                      cache_interference=interference, cache_sweet_spot_cu=sweet,
                      parallel_fraction=p, compute_efficiency=eff, **kw)


def _unscalable(name: str, wc: float, wm: float, serial: float, *,
                p: float = 0.75, eff: float = 0.8, **kw) -> KernelSpec:
    return KernelSpec(name=name, scaling_class=ScalingClass.UNSCALABLE,
                      compute_work=wc, memory_traffic=wm, serial_time_s=serial,
                      parallel_fraction=p, compute_efficiency=eff, **kw)


# ----- regular benchmarks ---------------------------------------------------


def _mandelbulb_gpu() -> Application:
    kernel = _compute("mandelbulb", 12.0, 0.06, p=0.995, eff=0.85)
    return Application(
        name="mandelbulbGPU", suite="Phoronix", category=Category.REGULAR,
        kernels=expand_pattern([(kernel, 20)]), pattern="A20",
    )


def _nbody() -> Application:
    kernel = _compute("nbody_sim", 28.0, 0.08, p=0.995, eff=0.9)
    return Application(
        name="NBody", suite="AMD APP SDK", category=Category.REGULAR,
        kernels=expand_pattern([(kernel, 10)]), pattern="A10",
    )


def _lbm() -> Application:
    kernel = _peak("lbm_stream_collide", 6.0, 0.55, interference=0.5, sweet=4)
    return Application(
        name="lbm", suite="Parboil", category=Category.REGULAR,
        kernels=expand_pattern([(kernel, 10)]), pattern="A10",
    )


# ----- irregular, repeating pattern ----------------------------------------


def _eigenvalue() -> Application:
    a = _compute("calNumEigenInterval", 18.0, 0.1)
    b = _memory("recalculateEigenInterval", 1.5, 1.4, p=0.9)
    return Application(
        name="EigenValue", suite="AMD APP SDK",
        category=Category.IRREGULAR_REPEATING,
        kernels=expand_pattern([(a, 1), (b, 1)] * 5), pattern="(AB)5",
    )


def _xsbench() -> Application:
    a = _memory("macro_xs_lookup", 3.0, 2.8, p=0.9)
    b = _unscalable("grid_search", 0.8, 0.2, 0.05, p=0.75)
    c = _compute("xs_accumulate", 22.0, 0.3)
    return Application(
        name="XSBench", suite="Exascale",
        category=Category.IRREGULAR_REPEATING,
        kernels=expand_pattern([(a, 1), (b, 1), (c, 1)] * 2), pattern="(ABC)2",
    )


# ----- irregular, non-repeating pattern -------------------------------------


def _spmv() -> Application:
    a = _compute("spmv_ellpackr", 2.4, 0.12, p=0.98)
    b = _memory("spmv_csr_vector", 0.8, 0.28, p=0.95, eff=0.8)
    c = _unscalable("spmv_csr_scalar", 0.4, 0.12, 0.004, p=0.85)
    return Application(
        name="Spmv", suite="SHOC", category=Category.IRREGULAR_NON_REPEATING,
        kernels=expand_pattern([(a, 10), (b, 10), (c, 10)]), pattern="A10B10C10",
    )


def _kmeans() -> Application:
    # The swap kernel reshuffles the data layout: latency-bound and
    # barely parallel, it is most efficient at the smallest GPU
    # configuration — the configuration that then cripples the compute
    # kernel PPK launches it at (the paper's kmeans story).
    swap = _unscalable("kmeans_swap", 0.3, 0.5, 0.01, p=0.7)
    point = _compute("kmeansPoint", 3.6, 0.15, p=0.98)
    return Application(
        name="kmeans", suite="Rodinia", category=Category.IRREGULAR_NON_REPEATING,
        kernels=expand_pattern([(swap, 1), (point, 20)]), pattern="AB20",
    )


# ----- irregular, kernels varying with input --------------------------------


def _input_varying(name: str, suite: str, base: KernelSpec,
                   scales: List[float], *, memory_exponent: float = 0.8,
                   pattern: str = "") -> Application:
    kernels = [
        base.with_input(i + 1, work_scale=s, memory_scale=s**memory_exponent)
        for i, s in enumerate(scales)
    ]
    return Application(
        name=name, suite=suite, category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern=pattern or f"A1..A{len(scales)}",
    )


def _swat() -> Application:
    base = _compute("swat_wavefront", 2.5, 0.4, p=0.93, eff=0.75)
    scales = [0.25, 0.5, 1.0, 1.5, 2.0, 2.0, 1.5, 1.0, 0.5, 0.25, 0.4, 0.9]
    return _input_varying("swat", "OpenDwarfs", base, scales)


def _color() -> Application:
    # Graph colouring: the active frontier shrinks overall but jumps
    # between large and small from one iteration to the next, so "the
    # previous kernel repeats" is wrong at every step.
    base = _memory("color_maxmin", 1.0, 0.5, p=0.9)
    scales = [2.5, 0.4, 1.8, 0.3, 1.2, 0.25, 0.9, 0.2, 0.6, 0.15, 0.45, 0.12]
    return _input_varying("color", "Pannotia", base, scales)


def _pb_bfs() -> Application:
    # BFS levels grow toward the graph's bulk with oscillating frontier
    # sizes: an overall low-to-high throughput transition (the kmeans
    # shape the paper notes) with jagged steps.
    base = _memory("bfs_frontier", 0.6, 0.5, p=0.88, serial_time_s=0.002)
    scales = [0.06, 0.12, 0.5, 0.15, 1.2, 0.4, 2.4, 0.9, 2.8, 1.6]
    return _input_varying("pb-bfs", "Parboil", base, scales)


def _mis() -> Application:
    # Maximal independent set: shrinking but strongly alternating
    # frontier (select vs. compact rounds differ widely in size).
    base = _memory("mis_select", 0.9, 0.45, p=0.85, serial_time_s=0.0015)
    scales = [2.0, 0.5, 1.5, 0.35, 1.0, 0.25, 0.7, 0.18, 0.45, 0.12]
    return _input_varying("mis", "Pannotia", base, scales)


def _srad() -> Application:
    srad1 = _compute("srad_cuda_1", 3.0, 0.35, p=0.96, eff=0.8)
    srad2 = _memory("srad_cuda_2", 1.2, 0.7, p=0.92)
    kernels: List[KernelSpec] = []
    for i in range(6):
        kernels.append(srad1.with_input(i + 1, work_scale=1.0 + 0.03 * i))
        kernels.append(srad2.with_input(i + 1, work_scale=1.0 + 0.03 * i))
    # Late-phase drift: convergence checks serialize the final
    # iterations — large compute work with a low parallel fraction, a
    # regime outside the training population's envelope.  The offline
    # model extrapolates badly here; this is the misprediction the
    # paper reports as srad's worst-case late-phase loss.
    drifted1 = KernelSpec(
        name="srad_cuda_1", scaling_class=ScalingClass.UNSCALABLE,
        compute_work=6.0, memory_traffic=0.4, parallel_fraction=0.55,
        compute_efficiency=0.85,
    )
    drifted2 = KernelSpec(
        name="srad_cuda_2", scaling_class=ScalingClass.UNSCALABLE,
        compute_work=3.5, memory_traffic=0.6, parallel_fraction=0.5,
        compute_efficiency=0.8,
    )
    for i in range(6, 8):
        kernels.append(drifted1.with_input(i + 1))
        kernels.append(drifted2.with_input(i + 1))
    return Application(
        name="srad", suite="Rodinia", category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="(AB)8 input-varying",
    )


def _lulesh() -> Application:
    k1 = _compute("CalcForceForNodes", 5.0, 0.3, p=0.97)
    k2 = _memory("CalcQForElems", 1.0, 0.8, p=0.9)
    k3 = _unscalable("CalcTimeConstraints", 0.5, 0.15, 0.012, p=0.8)
    iteration_scales = [1.0, 1.15, 0.85, 1.3, 0.7]
    kernels: List[KernelSpec] = []
    for i, s in enumerate(iteration_scales):
        for base in (k1, k2, k3):
            kernels.append(base.with_input(i + 1, work_scale=s))
    return Application(
        name="lulesh", suite="Exascale", category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="(ABC)5 input-varying",
    )


def _lud() -> Application:
    base = _compute("lud_perimeter", 2.0, 0.25, p=0.95)
    scales = [2.4 * 0.82**i for i in range(14)]
    return _input_varying("lud", "Rodinia", base, scales)


def _hybridsort() -> Application:
    a = _memory("bucketcount", 0.8, 0.7, p=0.9)
    b = _unscalable("bucketprefixoffset", 0.15, 0.05, 0.005, p=0.75)
    c = _memory("bucketsort", 1.1, 0.9, p=0.9)
    d = _compute("histogram1024", 2.8, 0.2, p=0.97)
    e = _unscalable("prefixsum", 0.1, 0.04, 0.004, p=0.7)
    f = _compute("mergeSortPass", 1.6, 0.55, p=0.93, eff=0.75)
    g = _memory("mergepack", 0.9, 0.75, p=0.9)
    merge_scales = [2.0, 1.65, 1.35, 1.1, 0.9, 0.75, 0.6, 0.5, 0.42]
    kernels: List[KernelSpec] = [a, b, c, d, e]
    kernels.extend(
        f.with_input(i + 1, work_scale=s, memory_scale=s**0.85)
        for i, s in enumerate(merge_scales)
    )
    kernels.append(g)
    return Application(
        name="hybridsort", suite="Rodinia",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(kernels), pattern="ABCDEF1F2F3F4F5F6F7F8F9G",
    )


_BUILDERS: Dict[str, Callable[[], Application]] = {
    "mandelbulbGPU": _mandelbulb_gpu,
    "NBody": _nbody,
    "lbm": _lbm,
    "EigenValue": _eigenvalue,
    "XSBench": _xsbench,
    "Spmv": _spmv,
    "kmeans": _kmeans,
    "swat": _swat,
    "color": _color,
    "pb-bfs": _pb_bfs,
    "mis": _mis,
    "srad": _srad,
    "lulesh": _lulesh,
    "lud": _lud,
    "hybridsort": _hybridsort,
}

#: The 15 benchmark names in Table IV order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def benchmark(name: str) -> Application:
    """Build one of the Table IV benchmarks by name.

    Args:
        name: One of :data:`BENCHMARK_NAMES`.

    Returns:
        A freshly constructed :class:`Application`.

    Raises:
        KeyError: If the name is not a Table IV benchmark.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        ) from None
    return builder()


def all_benchmarks() -> List[Application]:
    """All 15 Table IV benchmarks, in table order."""
    return [benchmark(name) for name in BENCHMARK_NAMES]


def benchmarks_by_category() -> Dict[Category, List[Application]]:
    """The benchmarks grouped by their Table IV category."""
    grouped: Dict[Category, List[Application]] = {c: [] for c in Category}
    for app in all_benchmarks():
        grouped[app.category].append(app)
    return grouped
