"""Kernel specifications: the ground-truth description of a GPU kernel.

A :class:`KernelSpec` captures everything the *hardware model* needs to
compute the execution time and power of one kernel launch at any
hardware configuration.  It plays the role of the physical kernel
binary + input in the paper's testbed: policies never read these fields
directly — they only see performance counters (:mod:`repro.workloads.counters`)
and measurements, exactly as the paper's runtime only sees CodeXL
counters and the power controller's telemetry.

The four scaling classes of the paper's Figure 2 are encoded in
:class:`ScalingClass` and realized through the spec parameters:

* ``COMPUTE``: large ``compute_work`` relative to ``memory_traffic`` and
  a high ``parallel_fraction`` — speeds up with CUs and GPU frequency,
  insensitive to NB state.
* ``MEMORY``: bandwidth-dominated — speeds up with NB state up to NB2,
  saturates with CUs early.
* ``PEAK``: compute-leaning but with non-zero ``cache_interference`` —
  adding CUs beyond ``cache_sweet_spot_cu`` thrashes the shared cache
  and *hurts* performance, so both performance and energy peak at a
  mid-size configuration.
* ``UNSCALABLE``: dominated by ``serial_time_s`` (launch latency,
  divergent/serialized execution) — insensitive to every knob and most
  efficient at the smallest configuration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["ScalingClass", "KernelSpec"]


class ScalingClass(enum.Enum):
    """The four kernel scaling behaviours of the paper's Figure 2."""

    COMPUTE = "compute"
    MEMORY = "memory"
    PEAK = "peak"
    UNSCALABLE = "unscalable"


@dataclass(frozen=True)
class KernelSpec:
    """Ground truth characteristics of one GPU kernel (for one input).

    Attributes:
        name: Kernel identity, e.g. ``"kmeansPoint"``.  Kernels with the
            same name but different inputs should use distinct
            ``input_id`` values (the paper's ``F1..F9`` case).
        scaling_class: Which of the four Figure-2 behaviours this kernel
            exhibits.  Only used for labelling/reporting; the timing
            model derives behaviour purely from the numeric fields.
        compute_work: Total vector-ALU work in giga-lane-operations.
        memory_traffic: Off-chip memory traffic in GB at an isolated
            (interference-free) cache operating point.
        parallel_fraction: Amdahl fraction of the compute work that
            scales with the number of active CUs, in ``[0, 1]``.
        serial_time_s: Fixed per-launch serial time in seconds that no
            knob can reduce (kernel launch, serialized sections).
        cache_interference: Fractional extra memory traffic added per
            active CU beyond ``cache_sweet_spot_cu`` (shared-cache
            thrashing; zero for well-behaved kernels).
        cache_sweet_spot_cu: CU count above which cache interference
            begins to add memory traffic.
        compute_efficiency: Fraction of peak lane throughput the kernel
            sustains when compute-bound, in ``(0, 1]`` (issue stalls,
            divergence).
        instructions: Total executed instructions (thread count times
            instructions per thread); the numerator of the paper's
            throughput metric.
        activity_factor: Relative switching activity of the GPU while
            this kernel runs, scaling dynamic power (1.0 = typical).
        input_id: Distinguishes invocations of the same kernel code on
            different inputs; part of the kernel's identity.
    """

    name: str
    scaling_class: ScalingClass
    compute_work: float
    memory_traffic: float
    parallel_fraction: float = 0.95
    serial_time_s: float = 0.0
    cache_interference: float = 0.0
    cache_sweet_spot_cu: int = 8
    compute_efficiency: float = 0.8
    instructions: float = 0.0
    activity_factor: float = 1.0
    input_id: int = 0

    def __post_init__(self) -> None:
        if self.compute_work < 0 or self.memory_traffic < 0:
            raise ValueError("work terms must be non-negative")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.serial_time_s < 0:
            raise ValueError("serial_time_s must be non-negative")
        if self.cache_interference < 0:
            raise ValueError("cache_interference must be non-negative")
        if self.compute_work == 0 and self.memory_traffic == 0 and self.serial_time_s == 0:
            raise ValueError("kernel must have some work")
        if self.instructions <= 0:
            # Default the architectural instruction count to the lane
            # work: one giga-lane-op ~ one giga-instruction.
            object.__setattr__(
                self, "instructions", max(1.0, 1e9 * (self.compute_work + 0.25 * self.memory_traffic))
            )

    @property
    def key(self) -> str:
        """Unique identity of (kernel code, input)."""
        if self.input_id:
            return f"{self.name}#{self.input_id}"
        return self.name

    def with_input(self, input_id: int, *, work_scale: float = 1.0,
                   memory_scale: Optional[float] = None) -> "KernelSpec":
        """Derive a variant of this kernel running on a different input.

        Used to build the paper's input-varying benchmarks (hybridsort's
        ``F1..F9``, srad, lulesh, ...), where the same kernel code shows
        different performance/power behaviour per invocation.

        Args:
            input_id: Identity tag of the new input.
            work_scale: Multiplier on compute work and instructions.
            memory_scale: Multiplier on memory traffic; defaults to
                ``work_scale``.

        Returns:
            A new :class:`KernelSpec` for the same kernel code.
        """
        mem_scale = work_scale if memory_scale is None else memory_scale
        return replace(
            self,
            input_id=input_id,
            compute_work=self.compute_work * work_scale,
            memory_traffic=self.memory_traffic * mem_scale,
            instructions=self.instructions * work_scale,
        )

    @property
    def arithmetic_intensity(self) -> float:
        """Giga-lane-ops per GB of memory traffic (roofline x-axis)."""
        if self.memory_traffic == 0:
            return math.inf
        return self.compute_work / self.memory_traffic

    def __str__(self) -> str:
        return (
            f"KernelSpec({self.key}, {self.scaling_class.value}, "
            f"{self.compute_work:.3g} Gops, {self.memory_traffic:.3g} GB)"
        )
