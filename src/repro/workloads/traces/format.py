"""The versioned JSONL kernel-launch trace format.

A trace file is one JSON object per line, keys sorted (the same
byte-comparability convention as the observability JSONL traces, see
``docs/trace.schema.json``):

* line 1 is the **header** record: schema version, trace identity, the
  hosting environment (``enforce_tdp``), the session roster (one
  :class:`SessionSpec` per concurrent application, each naming its
  policy via a :class:`PolicySpec`), and the trace's machine-checkable
  :class:`CoverageAssertion` list;
* every following line is a **launch** record: the event's position and
  session, the full ground-truth :class:`~repro.workloads.kernel.KernelSpec`
  of the kernel being launched and, optionally, the **recorded
  decision** a previous replay produced for it — configuration, exact
  measured times/energies, horizon, fail-safe provenance — which
  :class:`~repro.workloads.traces.replay.TraceReplayer` re-checks
  float-for-float.

The structural contract is mirrored by ``docs/kernel_trace.schema.json``
(validated by ``repro trace validate``); :meth:`Trace.validate` adds the
semantic checks a per-line schema cannot express (index contiguity,
session routing, the same-key/same-spec kernel identity invariant).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hardware.config import HardwareConfig
from repro.runtime.events import KernelLaunch
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

__all__ = [
    "ASSERTION_METRICS",
    "ASSERTION_OPS",
    "GLOBAL_ONLY_METRICS",
    "POLICY_KINDS",
    "PREDICTOR_KINDS",
    "TRACE_SCHEMA",
    "CoverageAssertion",
    "PolicySpec",
    "RecordedDecision",
    "SessionSpec",
    "Trace",
    "TraceEvent",
    "TraceHeader",
    "kernel_from_dict",
    "kernel_to_dict",
]

#: Bump when the trace file layout changes.
TRACE_SCHEMA = 1

#: Policy kinds a session spec may name.
POLICY_KINDS = ("mpc", "ppk", "turbo", "fixed")

#: Predictor backends a policy spec may request.
PREDICTOR_KINDS = ("oracle", "forest")

#: Comparison operators coverage assertions may use.
ASSERTION_OPS = (">=", "<=", "==", "!=", ">", "<")

#: Metrics coverage assertions may reference.  The first block comes
#: from per-session :class:`~repro.runtime.session.SessionStats`; the
#: second is derived from outcomes or read from the replay's metrics
#: registry; the ``health_*`` block reads the replay's model-health
#: monitor (:mod:`repro.obs.health`): drift events fired, the
#: session-local decision ordinal of the first drift (``inf`` when
#: none — assert with ``<=``), the final state level (0 healthy /
#: 1 degraded / 2 untrusted; worst across sessions for ``"*"``), and
#: state-machine transitions.
ASSERTION_METRICS = (
    "launches",
    "runs",
    "model_evaluations",
    "fail_safe_decisions",
    "fail_safe_fallbacks",
    "fail_safe_total",
    "observe_failures",
    "distinct_configs",
    "sessions",
    "ppk_decisions",
    "mpc_decisions",
    "skip_decisions",
    "pattern_misses",
    "tdp_throttles",
    "health_drift_events",
    "health_first_drift_decision",
    "health_final_state",
    "health_transitions",
)

#: Registry-backed metrics whose counters carry no ``session`` label
#: (the MPC manager does not know its hosting session), so assertions
#: on them must target the whole trace (``session == "*"``).
GLOBAL_ONLY_METRICS = frozenset(
    {"ppk_decisions", "mpc_decisions", "skip_decisions", "pattern_misses", "sessions"}
)

#: KernelSpec fields serialized per launch record, in declaration order.
_KERNEL_FIELDS = (
    "name",
    "scaling_class",
    "compute_work",
    "memory_traffic",
    "parallel_fraction",
    "serial_time_s",
    "cache_interference",
    "cache_sweet_spot_cu",
    "compute_efficiency",
    "instructions",
    "activity_factor",
    "input_id",
)


def kernel_to_dict(spec: KernelSpec) -> Dict[str, Any]:
    """A kernel spec as a JSON-able dict (lossless, see RL008)."""
    payload = {name: getattr(spec, name) for name in _KERNEL_FIELDS}
    payload["scaling_class"] = spec.scaling_class.value
    return payload


def kernel_from_dict(payload: Dict[str, Any]) -> KernelSpec:
    """Rebuild a kernel spec from :func:`kernel_to_dict` output.

    ``instructions`` round-trips exactly: serialized values are always
    positive (the dataclass derives a positive default), so
    ``__post_init__`` never recomputes them on load.
    """
    unknown = set(payload) - set(_KERNEL_FIELDS)
    if unknown:
        raise ValueError(f"unknown kernel fields: {sorted(unknown)}")
    kwargs = dict(payload)
    kwargs["scaling_class"] = ScalingClass(kwargs["scaling_class"])
    return KernelSpec(**kwargs)


@dataclass(frozen=True)
class RecordedDecision:
    """What a previous replay decided and measured for one launch.

    Mirrors the measured side of
    :class:`~repro.sim.trace.LaunchRecord` plus the runtime's
    ``fallback`` provenance, so a checking replay can compare its own
    outcome float-for-float.
    """

    config: HardwareConfig
    time_s: float
    gpu_energy_j: float
    cpu_energy_j: float
    overhead_time_s: float = 0.0
    overhead_gpu_energy_j: float = 0.0
    overhead_cpu_energy_j: float = 0.0
    horizon: int = 0
    fail_safe: bool = False
    fallback: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.as_dict(),
            "time_s": self.time_s,
            "gpu_energy_j": self.gpu_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "overhead_time_s": self.overhead_time_s,
            "overhead_gpu_energy_j": self.overhead_gpu_energy_j,
            "overhead_cpu_energy_j": self.overhead_cpu_energy_j,
            "horizon": self.horizon,
            "fail_safe": self.fail_safe,
            "fallback": self.fallback,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RecordedDecision":
        kwargs = dict(payload)
        kwargs["config"] = HardwareConfig.from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass(frozen=True)
class TraceEvent:
    """One launch line: a kernel-launch event, optionally with its
    recorded decision."""

    index: int
    session: str
    spec: KernelSpec
    decision: Optional[RecordedDecision] = None

    def as_launch(self) -> KernelLaunch:
        """The runtime event this line replays as."""
        return KernelLaunch(index=self.index, spec=self.spec, session_id=self.session)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "record": "launch",
            "index": self.index,
            "session": self.session,
            "kernel": kernel_to_dict(self.spec),
        }
        if self.decision is not None:
            payload["decision"] = self.decision.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        decision = payload.get("decision")
        return cls(
            index=payload["index"],
            session=payload["session"],
            spec=kernel_from_dict(payload["kernel"]),
            decision=(
                RecordedDecision.from_dict(decision) if decision is not None else None
            ),
        )


@dataclass(frozen=True)
class PolicySpec:
    """How to rebuild a session's policy at replay time.

    ``target_throughput`` is stored as an explicit rate (computed once
    when the trace is recorded or generated), never recomputed on
    replay, so the policy a replayer builds is bit-identical to the one
    the trace was captured against.
    """

    kind: str
    target_throughput: float = 0.0
    alpha: float = 0.05
    adaptive_horizon: bool = True
    predictor: str = "oracle"
    config: Optional[HardwareConfig] = None

    def validate(self) -> List[str]:
        problems = []
        if self.kind not in POLICY_KINDS:
            problems.append(f"unknown policy kind {self.kind!r}")
        if self.predictor not in PREDICTOR_KINDS:
            problems.append(f"unknown predictor {self.predictor!r}")
        if self.kind in ("mpc", "ppk") and self.target_throughput <= 0:
            problems.append(
                f"policy {self.kind!r} needs a positive target_throughput"
            )
        if self.kind == "fixed" and self.config is None:
            problems.append("policy 'fixed' needs a config")
        return problems

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "target_throughput": self.target_throughput,
            "alpha": self.alpha,
            "adaptive_horizon": self.adaptive_horizon,
            "predictor": self.predictor,
        }
        if self.config is not None:
            payload["config"] = self.config.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PolicySpec":
        kwargs = dict(payload)
        if "config" in kwargs:
            kwargs["config"] = HardwareConfig.from_dict(kwargs["config"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SessionSpec:
    """One concurrent application stream and the policy hosting it."""

    session_id: str
    app_name: str
    policy: PolicySpec
    charge_overhead: bool = True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "app_name": self.app_name,
            "policy": self.policy.as_dict(),
            "charge_overhead": self.charge_overhead,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionSpec":
        kwargs = dict(payload)
        kwargs["policy"] = PolicySpec.from_dict(kwargs["policy"])
        return cls(**kwargs)


@dataclass(frozen=True)
class CoverageAssertion:
    """A machine-checkable claim about what a replay must exercise.

    Examples: ``ppk_decisions >= 12`` ("the pattern extractor must
    enter fallback at least 12 times"), ``tdp_throttles >= 1`` ("the
    TDP throttle must engage").  ``session`` scopes per-session metrics
    to one stream; ``"*"`` aggregates the whole trace.
    """

    metric: str
    op: str
    value: float
    session: str = "*"

    def check(self, measured: float) -> bool:
        """Whether ``measured`` satisfies this assertion."""
        if self.op == ">=":
            return measured >= self.value
        if self.op == "<=":
            return measured <= self.value
        if self.op == "==":
            return measured == self.value
        if self.op == "!=":
            return measured != self.value
        if self.op == ">":
            return measured > self.value
        if self.op == "<":
            return measured < self.value
        raise ValueError(f"unknown assertion op {self.op!r}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "op": self.op,
            "value": self.value,
            "session": self.session,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CoverageAssertion":
        return cls(**payload)

    def __str__(self) -> str:
        scope = "" if self.session == "*" else f"[{self.session}]"
        return f"{self.metric}{scope} {self.op} {self.value:g}"


@dataclass(frozen=True)
class TraceHeader:
    """Line 1 of a trace file: identity, environment, roster, contract."""

    name: str
    schema: int = TRACE_SCHEMA
    source: str = ""
    seed: Optional[int] = None
    enforce_tdp: bool = False
    sessions: Tuple[SessionSpec, ...] = ()
    assertions: Tuple[CoverageAssertion, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "record": "header",
            "schema": self.schema,
            "name": self.name,
            "source": self.source,
            "seed": self.seed,
            "enforce_tdp": self.enforce_tdp,
            "sessions": [spec.as_dict() for spec in self.sessions],
            "assertions": [a.as_dict() for a in self.assertions],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceHeader":
        return cls(
            name=payload["name"],
            schema=payload["schema"],
            source=payload.get("source", ""),
            seed=payload.get("seed"),
            enforce_tdp=payload.get("enforce_tdp", False),
            sessions=tuple(
                SessionSpec.from_dict(s) for s in payload.get("sessions", ())
            ),
            assertions=tuple(
                CoverageAssertion.from_dict(a) for a in payload.get("assertions", ())
            ),
        )


@dataclass(frozen=True)
class Trace:
    """A complete kernel-launch trace: header plus event lines.

    The event order *is* the trace: for multi-session traces the
    interleaving of lines across sessions is the arrival schedule the
    replayer reproduces.
    """

    header: TraceHeader
    events: Tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    # ----- queries ---------------------------------------------------------

    def session_ids(self) -> List[str]:
        """Declared session ids, in roster order."""
        return [spec.session_id for spec in self.header.sessions]

    def session(self, session_id: str) -> SessionSpec:
        """The declared spec of one session."""
        for spec in self.header.sessions:
            if spec.session_id == session_id:
                return spec
        raise KeyError(f"trace declares no session {session_id!r}")

    def events_for(self, session_id: str) -> List[TraceEvent]:
        """This session's events, in trace order."""
        return [e for e in self.events if e.session == session_id]

    def launch_events(self) -> Iterator[KernelLaunch]:
        """The trace as a runtime event stream, in trace order."""
        for event in self.events:
            yield event.as_launch()

    def unique_kernels(self, session_id: str) -> List[KernelSpec]:
        """Distinct (kernel, input) identities one session launches."""
        seen: Dict[str, KernelSpec] = {}
        for event in self.events_for(session_id):
            seen.setdefault(event.spec.key, event.spec)
        return list(seen.values())

    def applications(self, session_id: str) -> List[Application]:
        """One :class:`Application` per invocation of one session.

        This is the batch-driver view of the stream: each ``index == 0``
        event opens a new invocation, exactly as
        :meth:`~repro.runtime.session.SessionRuntime.process` does.
        """
        spec = self.session(session_id)
        invocations: List[List[KernelSpec]] = []
        for event in self.events_for(session_id):
            if event.index == 0:
                invocations.append([])
            invocations[-1].append(event.spec)
        return [
            Application(
                spec.app_name,
                "trace",
                Category.IRREGULAR_NON_REPEATING,
                kernels=tuple(kernels),
            )
            for kernels in invocations
        ]

    def with_decisions(
        self, decisions: List[Optional[RecordedDecision]]
    ) -> "Trace":
        """A copy of this trace with one recorded decision per event."""
        if len(decisions) != len(self.events):
            raise ValueError(
                f"{len(decisions)} decisions for {len(self.events)} events"
            )
        stamped = tuple(
            TraceEvent(e.index, e.session, e.spec, decision)
            for e, decision in zip(self.events, decisions)
        )
        return Trace(header=self.header, events=stamped)

    # ----- semantic validation --------------------------------------------

    def validate(self) -> List[str]:
        """Semantic problems a per-line schema cannot express.

        Checks schema version, the session roster, per-session index
        contiguity (every invocation starts at 0 and counts up), the
        same-key/same-spec kernel identity invariant
        (:class:`~repro.workloads.app.Application` enforces the same
        rule per invocation; traces enforce it per session so oracle
        predictors stay well-defined), and assertion well-formedness.
        """
        problems: List[str] = []
        if self.header.schema != TRACE_SCHEMA:
            problems.append(
                f"unsupported trace schema {self.header.schema!r} "
                f"(supported: {TRACE_SCHEMA})"
            )
            return problems
        if not self.header.name:
            problems.append("trace name must be non-empty")
        if not self.header.sessions:
            problems.append("trace declares no sessions")
        declared = set()
        for spec in self.header.sessions:
            if not spec.session_id:
                problems.append("session_id must be non-empty")
            if spec.session_id in declared:
                problems.append(f"duplicate session {spec.session_id!r}")
            declared.add(spec.session_id)
            for problem in spec.policy.validate():
                problems.append(f"session {spec.session_id!r}: {problem}")
        if not self.events:
            problems.append("trace has no launch events")

        cursor: Dict[str, int] = {}
        specs_by_key: Dict[str, Dict[str, KernelSpec]] = {}
        for position, event in enumerate(self.events):
            where = f"event {position} (session {event.session!r})"
            if event.session not in declared:
                problems.append(f"{where}: session not declared in header")
                continue
            expected = cursor.get(event.session)
            if expected is None and event.index != 0:
                problems.append(
                    f"{where}: first launch has index {event.index}, expected 0"
                )
            elif expected is not None and event.index not in (0, expected):
                problems.append(
                    f"{where}: out-of-order index {event.index}, "
                    f"expected {expected} (or 0 to start a new invocation)"
                )
            cursor[event.session] = event.index + 1
            known = specs_by_key.setdefault(event.session, {})
            first = known.setdefault(event.spec.key, event.spec)
            if first != event.spec:
                problems.append(
                    f"{where}: kernel key {event.spec.key!r} bound to two "
                    "different specs; give distinct inputs distinct input_id "
                    "values"
                )
        for session_id in declared:
            if session_id not in cursor:
                problems.append(f"session {session_id!r} has no launch events")

        for assertion in self.header.assertions:
            if assertion.metric not in ASSERTION_METRICS:
                problems.append(
                    f"assertion {assertion}: unknown metric {assertion.metric!r}"
                )
            if assertion.op not in ASSERTION_OPS:
                problems.append(
                    f"assertion {assertion}: unknown op {assertion.op!r}"
                )
            if assertion.session != "*" and assertion.session not in declared:
                problems.append(
                    f"assertion {assertion}: unknown session "
                    f"{assertion.session!r}"
                )
            if (
                assertion.metric in GLOBAL_ONLY_METRICS
                and assertion.session != "*"
            ):
                problems.append(
                    f"assertion {assertion}: metric {assertion.metric!r} has "
                    "no per-session counter; use session '*'"
                )
        return problems

    def ensure_valid(self) -> "Trace":
        """Raise :class:`ValueError` listing every semantic problem."""
        problems = self.validate()
        if problems:
            raise ValueError(
                f"invalid trace {self.header.name!r}:\n  " + "\n  ".join(problems)
            )
        return self

    # ----- serialization ---------------------------------------------------

    def dumps(self) -> str:
        """The trace as JSONL text (sorted keys: byte-stable)."""
        lines = [json.dumps(self.header.as_dict(), sort_keys=True)]
        lines.extend(
            json.dumps(event.as_dict(), sort_keys=True) for event in self.events
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: str) -> str:
        """Write the trace to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse JSONL trace text (inverse of :meth:`dumps`)."""
        header: Optional[TraceHeader] = None
        events: List[TraceEvent] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: invalid JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ValueError(f"line {lineno}: expected an object")
            kind = payload.get("record")
            if header is None:
                if kind != "header":
                    raise ValueError(
                        f"line {lineno}: first record must be the header, "
                        f"got {kind!r}"
                    )
                header = TraceHeader.from_dict(payload)
            elif kind == "launch":
                events.append(TraceEvent.from_dict(payload))
            else:
                raise ValueError(f"line {lineno}: unknown record kind {kind!r}")
        if header is None:
            raise ValueError("empty trace: no header record")
        return cls(header=header, events=tuple(events))

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace file written by :meth:`dump`."""
        with open(path, encoding="utf-8") as handle:
            return cls.loads(handle.read())
