"""Seeded adversarial scenario generator.

Each family builds launch sequences the paper's benchmarks never
exercise — exactly the out-of-distribution inputs the portable-predictor
and DSO lines of work (PAPERS.md) warn about — and stamps the trace
header with the :class:`~repro.workloads.traces.format.CoverageAssertion`
contract the scenario must provoke:

* ``phase-shift`` — the application's second half mutates into
  unscalable kernels after the profile froze, so the MPC window predicts
  from stale patterns and the tracker forces fail-safes.
* ``input-storm`` — one kernel, wildly varying inputs, and *more*
  launches than the profile recorded: every overflow launch must push
  the manager into its PPK degradation path (the "pattern extractor
  fallback ≥ N times" assertion).
* ``mispredict-cascade`` — srad-style progressive drift: each launch is
  a little heavier and a little less parallel than its profiled
  ancestor, so mispredictions compound into fail-safe cascades.
* ``bursty`` — serverless-style arrivals: three concurrent sessions
  under different policies, interleaved in random bursts, exercising
  the session-routing transparency invariant.
* ``tdp-storm`` — high-activity compute kernels pinned at the fastest
  configuration with TDP enforcement on: the throttle must engage.
* ``serverless`` — open-loop serverless arrivals: sessions arrive
  staggered (not all at t=0), launch in random bursts, and depart when
  their stream drains — the fleet simulator's canonical workload
  (:mod:`repro.fleet`), with a parameterized builder
  (:func:`build_serverless`) the fleet benchmark scales up.

All randomness flows through ``random.Random(f"{seed}:{family}")`` —
one derived stream per family, so generating a single family or the
whole corpus yields identical traces (the seeded-RNG invariant, RL002).
Every generated trace is replayed once before being returned; a family
whose coverage assertions do not hold raises instead of shipping a
vacuous scenario.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.hardware.config import ConfigSpace
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.traces.format import (
    CoverageAssertion,
    PolicySpec,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
)
from repro.workloads.traces.replay import TraceReplayer

__all__ = ["FAMILIES", "ScenarioGenerator", "build_serverless"]

#: The adversarial scenario families, in generation order.
FAMILIES = (
    "phase-shift",
    "input-storm",
    "mispredict-cascade",
    "bursty",
    "tdp-storm",
    "serverless",
)


def _turbo_target(kernels: Sequence[KernelSpec], name: str) -> float:
    """The Turbo Core throughput of one invocation's kernels.

    Computed once at generation time and stored in the policy spec;
    replays never recompute it.
    """
    app = Application(
        name, "trace", Category.IRREGULAR_NON_REPEATING, kernels=tuple(kernels)
    )
    sim = Simulator()
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    return turbo.instructions / turbo.kernel_time_s


def _compute_kernel(name: str, rng: random.Random, input_id: int = 0) -> KernelSpec:
    return KernelSpec(
        name,
        ScalingClass.COMPUTE,
        compute_work=rng.uniform(2.0, 6.0),
        memory_traffic=rng.uniform(0.05, 0.2),
        parallel_fraction=0.99,
        input_id=input_id,
    )


def _memory_kernel(name: str, rng: random.Random, input_id: int = 0) -> KernelSpec:
    return KernelSpec(
        name,
        ScalingClass.MEMORY,
        compute_work=rng.uniform(0.2, 0.8),
        memory_traffic=rng.uniform(0.5, 1.2),
        parallel_fraction=0.9,
        input_id=input_id,
    )


def _events(session: str, *invocations: Sequence[KernelSpec]) -> List[TraceEvent]:
    out: List[TraceEvent] = []
    for kernels in invocations:
        for index, spec in enumerate(kernels):
            out.append(TraceEvent(index=index, session=session, spec=spec))
    return out


def build_serverless(
    rng: random.Random,
    *,
    seed: int = 0,
    sessions: int = 5,
    invocations: int = 2,
    predictor: str = "oracle",
    variety: bool = True,
    name: str = "serverless",
    with_assertions: bool = True,
) -> Trace:
    """An open-loop serverless arrival trace, parameterized for scale.

    Sessions arrive staggered (each a random gap after the previous
    arrival), launch in random bursts of 1-4 consecutive events, and
    depart when their stream drains — the bursty/serverless shape the
    fleet simulator's placement, admission queue, and epoch budgets
    are exercised against.

    Args:
        rng: The derived randomness stream (the seeded-RNG invariant:
            callers derive it from a seed, never share it).
        seed: Recorded in the header for provenance only.
        sessions: Concurrent session count (policies cycle through
            mpc/ppk/turbo).
        invocations: Application invocations per session.
        predictor: Predictor backend for the mpc/ppk sessions.
        variety: Per-session kernels and targets (the family default).
            ``False`` draws one kernel pair and computes one Turbo
            target shared by every session — the benchmark mode, where
            target computation must not dominate setup at 64 sessions.
        name: Trace (and file) name.
        with_assertions: Stamp the coverage contract (disabled by the
            benchmark, which replays uncounted warm-up slices).
    """
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if invocations < 1:
        raise ValueError("invocations must be at least 1")
    kinds = ("mpc", "ppk", "turbo")
    shared_compute = _compute_kernel("svl-c", rng)
    shared_memory = _memory_kernel("svl-m", rng)
    shared_target = (
        None
        if variety
        else _turbo_target([shared_compute, shared_memory] * 3, name)
    )

    specs: List[SessionSpec] = []
    streams: Dict[str, List[TraceEvent]] = {}
    for ordinal in range(sessions):
        session = f"fn-{ordinal}"
        kind = kinds[ordinal % len(kinds)]
        if variety:
            compute = _compute_kernel(f"svl-c{ordinal}", rng)
            memory = _memory_kernel(f"svl-m{ordinal}", rng)
        else:
            compute, memory = shared_compute, shared_memory
        invocation = [compute, memory] * 3
        if kind == "turbo":
            policy = PolicySpec(kind="turbo")
        else:
            target = (
                shared_target
                if shared_target is not None
                else _turbo_target(invocation, session)
            )
            policy = PolicySpec(
                kind=kind, target_throughput=target, predictor=predictor
            )
        specs.append(
            SessionSpec(session_id=session, app_name=session, policy=policy)
        )
        streams[session] = _events(session, *([invocation] * invocations))

    # Open-loop arrivals: session k becomes eligible only after its
    # arrival position in the merged stream; launches then interleave
    # in bursts among the arrived-and-pending sessions.
    arrivals: Dict[str, int] = {}
    position = 0
    for spec in specs:
        arrivals[spec.session_id] = position
        position += rng.randint(1, 8)
    interleaved: List[TraceEvent] = []
    pending = {sid: list(events) for sid, events in streams.items()}
    while any(pending.values()):
        eligible = sorted(
            sid
            for sid, queue in pending.items()
            if queue and arrivals[sid] <= len(interleaved)
        )
        if not eligible:
            # Arrival gap: the earliest future arrival opens the lull.
            eligible = [
                min(
                    (sid for sid, queue in pending.items() if queue),
                    key=lambda sid: (arrivals[sid], sid),
                )
            ]
        choice = rng.choice(eligible)
        for _ in range(rng.randint(1, 4)):
            if not pending[choice]:
                break
            interleaved.append(pending[choice].pop(0))

    total = float(sum(len(events) for events in streams.values()))
    assertions = ()
    if with_assertions:
        assertions = (
            CoverageAssertion("sessions", "==", float(sessions)),
            CoverageAssertion("launches", "==", total),
            CoverageAssertion("runs", "==", float(sessions * invocations)),
            CoverageAssertion("mpc_decisions", ">=", 1.0),
            CoverageAssertion("distinct_configs", ">=", 2.0),
        )
    header = TraceHeader(
        name=name,
        source=f"generator:serverless seed={seed}",
        seed=seed,
        sessions=tuple(specs),
        assertions=assertions,
    )
    return Trace(header=header, events=tuple(interleaved)).ensure_valid()


class ScenarioGenerator:
    """Deterministic adversarial-trace factory.

    Args:
        seed: Master seed.  Each family derives its own stream from
            ``f"{seed}:{family}"``, so per-family output is independent
            of which other families are generated.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._builders: Dict[str, Callable[[random.Random], Trace]] = {
            "phase-shift": self._phase_shift,
            "input-storm": self._input_storm,
            "mispredict-cascade": self._mispredict_cascade,
            "bursty": self._bursty,
            "tdp-storm": self._tdp_storm,
            "serverless": self._serverless,
        }

    # ----- public API ------------------------------------------------------

    def generate(self, family: str) -> Trace:
        """Build, validate, and coverage-check one family's trace.

        Raises:
            KeyError: Unknown family.
            RuntimeError: The generated trace does not provoke its own
                coverage assertions (a vacuous adversarial scenario).
        """
        try:
            builder = self._builders[family]
        except KeyError:
            known = ", ".join(sorted(self._builders))
            raise KeyError(f"unknown family {family!r}; known: {known}") from None
        trace = builder(random.Random(f"{self.seed}:{family}")).ensure_valid()
        report = TraceReplayer(trace, check=False).replay()
        failed = [r for r in report.assertion_results if not r.passed]
        if failed:
            lines = "\n  ".join(str(r) for r in failed)
            raise RuntimeError(
                f"family {family!r} (seed {self.seed}) does not provoke its "
                f"coverage assertions:\n  {lines}"
            )
        return trace

    def corpus(self, families: Sequence[str] = FAMILIES) -> List[Trace]:
        """Every family's trace, in the given order."""
        return [self.generate(family) for family in families]

    def dump_corpus(
        self, out_dir: str, families: Sequence[str] = FAMILIES
    ) -> List[str]:
        """Write one trace file per family; returns the paths."""
        os.makedirs(out_dir, exist_ok=True)
        paths = []
        for family in families:
            trace = self.generate(family)
            path = os.path.join(out_dir, f"{family}-seed{self.seed}.jsonl")
            paths.append(trace.dump(path))
        return paths

    # ----- families --------------------------------------------------------

    def _phase_shift(self, rng: random.Random) -> Trace:
        """Mid-pattern phase shift: the profiled pattern goes stale."""
        session = "phase-shift"
        compute = _compute_kernel("ps-compute", rng)
        memory = _memory_kernel("ps-memory", rng)
        profile = [compute, memory] * 6
        # After the profile freezes, positions 6..11 mutate into
        # unscalable serial-dominated kernels the extractor never saw.
        shifted = list(profile[:6]) + [
            KernelSpec(
                "ps-shift",
                ScalingClass.UNSCALABLE,
                compute_work=0.05,
                memory_traffic=0.02,
                parallel_fraction=0.2,
                serial_time_s=rng.uniform(0.8e-3, 2.0e-3),
                input_id=position + 1,
            )
            for position in range(6)
        ]
        target = _turbo_target(profile, session)
        header = TraceHeader(
            name="phase-shift",
            source=f"generator:phase-shift seed={self.seed}",
            seed=self.seed,
            sessions=(
                SessionSpec(
                    session_id=session,
                    app_name=session,
                    policy=PolicySpec(kind="mpc", target_throughput=target),
                ),
            ),
            assertions=(
                CoverageAssertion("launches", "==", 36.0),
                CoverageAssertion("runs", "==", 3.0),
                CoverageAssertion("mpc_decisions", ">=", 1.0),
                CoverageAssertion("fail_safe_total", ">=", 1.0, session=session),
                CoverageAssertion("distinct_configs", ">=", 2.0),
                # The fail-safe fully contains the shift: the model
                # never drifts on trusted samples, so the health
                # monitor must hold HEALTHY with zero drift events.
                CoverageAssertion("health_drift_events", "==", 0.0, session=session),
                CoverageAssertion("health_final_state", "==", 0.0, session=session),
            ),
        )
        return Trace(
            header=header,
            events=tuple(_events(session, profile, shifted, shifted)),
        )

    def _input_storm(self, rng: random.Random) -> Trace:
        """Input-varying storm with more launches than the profile."""
        session = "input-storm"
        base = _compute_kernel("storm", rng)
        profile = [
            base.with_input(i + 1, work_scale=rng.uniform(0.5, 2.0))
            for i in range(8)
        ]
        # The second invocation launches 12 kernels against an 8-launch
        # profile: every overflow launch must degrade to PPK.  The
        # first six are a deterministic flood block of maximum-size
        # inputs: elapsed time outruns the (1 + alpha) profiled
        # baseline budget (AdaptiveHorizonGenerator), so the fail-safe
        # skip cascade (budget collapse) fires at every seed instead
        # of only the lucky ones.
        storm = []
        for i in range(12):
            scale = rng.uniform(0.2, 5.0)
            if i < 6:
                scale = 5.0
            storm.append(base.with_input(101 + i, work_scale=scale))
        target = _turbo_target(profile, session)
        header = TraceHeader(
            name="input-storm",
            source=f"generator:input-storm seed={self.seed}",
            seed=self.seed,
            sessions=(
                SessionSpec(
                    session_id=session,
                    app_name=session,
                    policy=PolicySpec(kind="mpc", target_throughput=target),
                ),
            ),
            assertions=(
                CoverageAssertion("launches", "==", 20.0),
                CoverageAssertion("runs", "==", 2.0),
                # 8 profiling decisions + >= 4 beyond-profile fallbacks.
                CoverageAssertion("ppk_decisions", ">=", 12.0),
                CoverageAssertion("mpc_decisions", ">=", 1.0),
                # The storm collapses the overhead budget into a run of
                # fail-safe skips; the budget-collapse detector must
                # flag drift within 12 decisions (K, docs/TRACES.md).
                CoverageAssertion("health_drift_events", ">=", 1.0, session=session),
                CoverageAssertion(
                    "health_first_drift_decision", "<=", 12.0, session=session
                ),
            ),
        )
        return Trace(header=header, events=tuple(_events(session, profile, storm)))

    def _mispredict_cascade(self, rng: random.Random) -> Trace:
        """Progressive drift: every launch is heavier and less parallel."""
        session = "mispredict-cascade"
        compute = _compute_kernel("drift-c", rng)
        memory = _memory_kernel("drift-m", rng)
        # Alternating compute/memory profile: the memory-bound half
        # gives the optimizer genuine slack, so healthy decisions leave
        # the fail-safe configuration (distinct_configs coverage).
        profile = [
            (compute if i % 2 == 0 else memory).with_input(
                i + 1, work_scale=rng.uniform(0.9, 1.1)
            )
            for i in range(10)
        ]
        drifted = []
        for i in range(10):
            base = compute if i % 2 == 0 else memory
            grow = (1.25 ** (i + 1)) * rng.uniform(0.95, 1.05)
            drifted.append(
                KernelSpec(
                    base.name,
                    base.scaling_class,
                    compute_work=base.compute_work * grow,
                    memory_traffic=base.memory_traffic * grow,
                    parallel_fraction=max(0.5, base.parallel_fraction - 0.04 * (i + 1)),
                    compute_efficiency=base.compute_efficiency,
                    input_id=11 + i,
                )
            )
        target = _turbo_target(profile, session)
        header = TraceHeader(
            name="mispredict-cascade",
            source=f"generator:mispredict-cascade seed={self.seed}",
            seed=self.seed,
            sessions=(
                SessionSpec(
                    session_id=session,
                    app_name=session,
                    policy=PolicySpec(kind="mpc", target_throughput=target),
                ),
            ),
            assertions=(
                CoverageAssertion("launches", "==", 20.0),
                CoverageAssertion("runs", "==", 2.0),
                CoverageAssertion("fail_safe_total", ">=", 1.0, session=session),
                CoverageAssertion("distinct_configs", ">=", 2.0),
                # The cascade must trip the health state machine off
                # HEALTHY within 15 decisions (K, docs/TRACES.md) with
                # at least one drift event.
                CoverageAssertion("health_drift_events", ">=", 1.0, session=session),
                CoverageAssertion(
                    "health_first_drift_decision", "<=", 15.0, session=session
                ),
                CoverageAssertion("health_final_state", ">=", 1.0, session=session),
            ),
        )
        return Trace(header=header, events=tuple(_events(session, profile, drifted)))

    def _bursty(self, rng: random.Random) -> Trace:
        """Serverless-style bursts across three concurrent sessions."""
        streams: Dict[str, List[TraceEvent]] = {}
        sessions: List[SessionSpec] = []
        kinds: List[Tuple[str, str]] = [
            ("svc-0", "mpc"),
            ("svc-1", "ppk"),
            ("svc-2", "turbo"),
        ]
        for ordinal, (session, kind) in enumerate(kinds):
            compute = _compute_kernel(f"burst-c{ordinal}", rng)
            memory = _memory_kernel(f"burst-m{ordinal}", rng)
            invocation = [compute, memory] * 3
            if kind == "turbo":
                policy = PolicySpec(kind="turbo")
            else:
                policy = PolicySpec(
                    kind=kind,
                    target_throughput=_turbo_target(invocation, session),
                )
            sessions.append(
                SessionSpec(session_id=session, app_name=session, policy=policy)
            )
            streams[session] = _events(session, invocation, invocation)
        # Interleave in bursts of 1-4 consecutive launches per pick:
        # arrival order across sessions is random, order within each
        # session is preserved (the runtime rejects anything else).
        interleaved: List[TraceEvent] = []
        pending = {sid: list(events) for sid, events in streams.items()}
        while any(pending.values()):
            alive = sorted(sid for sid, queue in pending.items() if queue)
            choice = rng.choice(alive)
            for _ in range(rng.randint(1, 4)):
                if not pending[choice]:
                    break
                interleaved.append(pending[choice].pop(0))
        header = TraceHeader(
            name="bursty",
            source=f"generator:bursty seed={self.seed}",
            seed=self.seed,
            sessions=tuple(sessions),
            assertions=(
                CoverageAssertion("sessions", "==", 3.0),
                CoverageAssertion("launches", "==", 36.0),
                CoverageAssertion("runs", "==", 6.0),
                CoverageAssertion("launches", "==", 12.0, session="svc-0"),
                CoverageAssertion("launches", "==", 12.0, session="svc-1"),
                CoverageAssertion("launches", "==", 12.0, session="svc-2"),
            ),
        )
        return Trace(header=header, events=tuple(interleaved))

    def _serverless(self, rng: random.Random) -> Trace:
        """Open-loop serverless arrivals (family defaults)."""
        return build_serverless(rng, seed=self.seed)

    def _tdp_storm(self, rng: random.Random) -> Trace:
        """High-activity kernels pinned at the fastest configuration."""
        session = "tdp-storm"
        kernels = [
            KernelSpec(
                "inferno",
                ScalingClass.COMPUTE,
                compute_work=rng.uniform(20.0, 40.0),
                memory_traffic=0.1,
                parallel_fraction=0.995,
                compute_efficiency=0.95,
                activity_factor=rng.uniform(3.0, 3.5),
                input_id=i + 1,
            )
            for i in range(8)
        ]
        header = TraceHeader(
            name="tdp-storm",
            source=f"generator:tdp-storm seed={self.seed}",
            seed=self.seed,
            enforce_tdp=True,
            sessions=(
                SessionSpec(
                    session_id=session,
                    app_name=session,
                    policy=PolicySpec(
                        kind="fixed", config=ConfigSpace().fastest()
                    ),
                ),
            ),
            assertions=(
                CoverageAssertion("launches", "==", 8.0),
                CoverageAssertion("tdp_throttles", ">=", 1.0),
                CoverageAssertion("tdp_throttles", ">=", 1.0, session=session),
            ),
        )
        return Trace(header=header, events=tuple(_events(session, kernels)))
