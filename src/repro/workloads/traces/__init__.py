"""Kernel-launch traces: recorded and generated first-class workloads.

The paper's evaluation runs 15 regex-encoded benchmark suites
(:mod:`repro.workloads.suites`).  This package generalizes the input
side: any kernel-launch sequence — recorded from a suite run, written by
hand, or produced by the adversarial :class:`ScenarioGenerator` — can be
stored as a versioned JSONL trace (:mod:`.format`) and replayed through
the streaming runtime's event protocol (:mod:`.replay`), with optional
recorded decisions checked float-for-float and machine-checkable
coverage assertions evaluated against the replay's statistics.
"""

from repro.workloads.traces.format import (
    ASSERTION_METRICS,
    ASSERTION_OPS,
    GLOBAL_ONLY_METRICS,
    TRACE_SCHEMA,
    CoverageAssertion,
    PolicySpec,
    RecordedDecision,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
    kernel_from_dict,
    kernel_to_dict,
)
from repro.workloads.traces.replay import (
    AssertionResult,
    ReplayReport,
    TraceReplayer,
    build_policy,
    outcome_decision,
    stamp_decisions,
    trace_from_benchmark,
)
from repro.workloads.traces.scenarios import (
    FAMILIES,
    ScenarioGenerator,
    build_serverless,
)

__all__ = [
    "ASSERTION_METRICS",
    "ASSERTION_OPS",
    "GLOBAL_ONLY_METRICS",
    "TRACE_SCHEMA",
    "CoverageAssertion",
    "PolicySpec",
    "RecordedDecision",
    "SessionSpec",
    "Trace",
    "TraceEvent",
    "TraceHeader",
    "kernel_from_dict",
    "kernel_to_dict",
    "AssertionResult",
    "ReplayReport",
    "TraceReplayer",
    "build_policy",
    "outcome_decision",
    "stamp_decisions",
    "trace_from_benchmark",
    "FAMILIES",
    "ScenarioGenerator",
    "build_serverless",
]
