"""Replaying kernel-launch traces through the streaming runtime.

:class:`TraceReplayer` turns a :class:`~repro.workloads.traces.format.Trace`
into live :class:`~repro.runtime.events.KernelLaunch` events and drives
them through a :class:`~repro.runtime.manager.SessionManager` built
exactly as the trace header describes (policies, targets, TDP
enforcement).  Replays always run with live instrumentation — the
coverage assertions read the same ``repro_mpc_*`` / ``repro_runtime_*``
counters the observability layer exports, and instrumentation never
affects numerics (the obs-purity invariant, RL005) — and emit one
``replay`` span summarizing the run next to the per-launch spans.

When the trace carries recorded decisions, the replayer checks its own
outcomes against them **float-for-float**: any drift in configuration,
time, energy, overhead, horizon, or fail-safe provenance is a mismatch.
This is the contract behind ``repro trace replay`` and the differential
harness in ``tests/differential/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.manager import MPCPowerManager
from repro.core.policies import FixedConfigPolicy, PPKPolicy
from repro.hardware.apu import APUModel
from repro.ml.predictors import OraclePredictor, PerfPowerPredictor
from repro.obs import Instrumentation, make_instrumentation
from repro.runtime.events import LaunchOutcome
from repro.runtime.manager import SessionManager, chunk_distinct_sessions
from repro.runtime.session import SessionStats
from repro.sim.policy import PowerPolicy
from repro.sim.simulator import OverheadModel, Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec
from repro.workloads.suites import benchmark
from repro.workloads.traces.format import (
    CoverageAssertion,
    PolicySpec,
    RecordedDecision,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
)

__all__ = [
    "AssertionResult",
    "ReplayReport",
    "TraceReplayer",
    "build_policy",
    "outcome_decision",
    "stamp_decisions",
    "trace_from_benchmark",
]

#: Fields compared float-for-float between a recorded decision and a
#: replayed outcome (plus ``config`` and the boolean provenance flags).
_CHECKED_FIELDS = (
    "time_s",
    "gpu_energy_j",
    "cpu_energy_j",
    "overhead_time_s",
    "overhead_gpu_energy_j",
    "overhead_cpu_energy_j",
    "horizon",
    "fail_safe",
)


def build_policy(
    spec: PolicySpec,
    kernels: List[KernelSpec],
    *,
    apu: APUModel,
    overhead: OverheadModel,
    obs: Optional[Instrumentation] = None,
    use_matrix: bool = True,
    cache_dir: str = ".cache",
) -> PowerPolicy:
    """Instantiate the policy a session spec describes.

    Args:
        spec: The declared policy.
        kernels: The session's distinct kernels (oracle population).
        apu: Ground-truth hardware model of the replay.
        overhead: Decision-overhead model of the replay.
        obs: Instrumentation shared with the hosting session.
        use_matrix: Decision-core path selector — ``False`` forces the
            scalar hill-climb (float-identical to the columnar path by
            the vectorization contract; the differential harness
            asserts exactly that).
        cache_dir: Random Forest cache directory (``forest`` predictor).
    """
    if spec.kind == "turbo":
        return TurboCorePolicy(tdp_w=apu.tdp_w)
    if spec.kind == "fixed":
        assert spec.config is not None  # ensured by PolicySpec.validate
        return FixedConfigPolicy(spec.config)

    predictor: PerfPowerPredictor
    if spec.predictor == "oracle":
        predictor = OraclePredictor(apu, kernels)
    else:
        from repro.ml.predictors import train_predictor

        predictor = train_predictor(apu=apu, cache_dir=cache_dir)
    if spec.kind == "ppk":
        return PPKPolicy(
            spec.target_throughput, predictor, use_matrix=use_matrix
        )
    if spec.kind == "mpc":
        return MPCPowerManager(
            spec.target_throughput,
            predictor,
            alpha=spec.alpha,
            adaptive_horizon=spec.adaptive_horizon,
            overhead_model=overhead,
            obs=obs,
            use_matrix=use_matrix,
        )
    raise ValueError(f"unknown policy kind {spec.kind!r}")


@dataclass(frozen=True)
class AssertionResult:
    """One coverage assertion evaluated against a finished replay."""

    assertion: CoverageAssertion
    measured: float
    passed: bool

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"{status} {self.assertion} (measured {self.measured:g})"


@dataclass
class ReplayReport:
    """Everything a finished replay produced.

    Attributes:
        trace: The trace that was replayed.
        outcomes: One :class:`LaunchOutcome` per event, in trace order.
        stats: Per-session statistics, keyed by session id.
        checked: How many events carried a recorded decision and were
            compared.
        mismatches: Human-readable float-for-float drift descriptions
            (empty on a faithful replay).
        assertion_results: Every header assertion, evaluated.
        spans: The replay's observability spans (launch spans, any
            ``health`` transition spans, plus the trailing ``replay``
            summary span), drained and JSON-able.
        registry: The live metrics registry of the replay.
        health: The replay's :class:`~repro.obs.health.HealthMonitor`
            (error ledgers, drift events, per-session health states).
    """

    trace: Trace
    outcomes: List[LaunchOutcome] = field(default_factory=list)
    stats: Dict[str, SessionStats] = field(default_factory=dict)
    checked: int = 0
    mismatches: List[str] = field(default_factory=list)
    assertion_results: List[AssertionResult] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    registry: Any = None
    health: Any = None

    @property
    def passed(self) -> bool:
        """No decision drift and every coverage assertion satisfied."""
        return not self.mismatches and all(
            r.passed for r in self.assertion_results
        )

    def decisions(self, session_id: Optional[str] = None) -> List[RecordedDecision]:
        """The replay's decision sequence as recordable decisions."""
        return [
            outcome_decision(o)
            for o in self.outcomes
            if session_id is None or o.session_id == session_id
        ]

    def metric(self, name: str, session: str = "*") -> float:
        """One coverage metric of this replay (see ASSERTION_METRICS)."""
        if name == "sessions":
            return float(len(self.stats))
        if name == "health_drift_events":
            return float(self.health.drift_events(session)) if self.health else 0.0
        if name == "health_first_drift_decision":
            if self.health is None:
                return float("inf")
            return self.health.first_drift_decision(session)
        if name == "health_final_state":
            return float(self.health.final_state(session)) if self.health else 0.0
        if name == "health_transitions":
            if self.health is None:
                return 0.0
            return float(self.health.transitions_count(session))
        if name == "distinct_configs":
            return float(
                len(
                    {
                        o.record.config
                        for o in self.outcomes
                        if session == "*" or o.session_id == session
                    }
                )
            )
        if name in ("ppk_decisions", "mpc_decisions", "skip_decisions"):
            counter = self.registry.counter("repro_mpc_decisions_total")
            return counter.value(mode=name.split("_")[0])
        if name == "pattern_misses":
            return self.registry.counter("repro_mpc_pattern_misses_total").total()
        if name == "tdp_throttles":
            counter = self.registry.counter("repro_runtime_tdp_throttles_total")
            return counter.total() if session == "*" else counter.value(session=session)
        if name == "fail_safe_total":
            return self.metric("fail_safe_decisions", session) + self.metric(
                "fail_safe_fallbacks", session
            )
        # SessionStats counters.
        if session == "*":
            return float(sum(getattr(s, name) for s in self.stats.values()))
        return float(getattr(self.stats[session], name))


def outcome_decision(outcome: LaunchOutcome) -> RecordedDecision:
    """The recordable decision of one replayed outcome."""
    record = outcome.record
    return RecordedDecision(
        config=record.config,
        time_s=record.time_s,
        gpu_energy_j=record.gpu_energy_j,
        cpu_energy_j=record.cpu_energy_j,
        overhead_time_s=record.overhead_time_s,
        overhead_gpu_energy_j=record.overhead_gpu_energy_j,
        overhead_cpu_energy_j=record.overhead_cpu_energy_j,
        horizon=record.horizon,
        fail_safe=record.fail_safe,
        fallback=outcome.fallback,
    )


class TraceReplayer:
    """Feeds a trace through the runtime event protocol and checks it.

    Args:
        trace: The trace to replay (validated before replaying).
        apu: Ground-truth hardware model; defaults to the standard APU.
        counters: Counter synthesizer; defaults to the standard seed.
        overhead: Decision-overhead model; defaults to the standard one.
        use_matrix: Decision-core path for MPC/PPK sessions (``False``
            selects the scalar hill-climb).
        batched: Feed events through ``SessionManager.step_batch`` in
            maximal distinct-session chunks instead of one at a time.
            Decisions and stats are identical to streaming (asserted by
            ``tests/differential/test_step_batch.py``).
        check: Compare outcomes against recorded decisions, when the
            trace carries them.
        cache_dir: Random Forest cache directory for ``forest``
            predictor specs.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        use_matrix: bool = True,
        batched: bool = False,
        check: bool = True,
        cache_dir: str = ".cache",
    ) -> None:
        self.trace = trace.ensure_valid()
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.use_matrix = use_matrix
        self.batched = batched
        self.check = check
        self.cache_dir = cache_dir
        # Replays always run instrumented: coverage assertions read the
        # registry (and the model-health monitor, for the health_*
        # metrics), and instrumentation never affects numerics.
        self.obs = make_instrumentation(health=True)

    def _build_manager(self) -> SessionManager:
        manager = SessionManager(
            apu=self.apu,
            counters=self.counters,
            overhead=self.overhead,
            enforce_tdp=self.trace.header.enforce_tdp,
            isolate_faults=True,
            obs=self.obs,
        )
        for spec in self.trace.header.sessions:
            policy = build_policy(
                spec.policy,
                self.trace.unique_kernels(spec.session_id),
                apu=self.apu,
                overhead=self.overhead,
                obs=self.obs,
                use_matrix=self.use_matrix,
                cache_dir=self.cache_dir,
            )
            manager.add_session(
                spec.session_id,
                policy,
                app_name=spec.app_name,
                charge_overhead=spec.charge_overhead,
            )
        return manager

    def _compare(
        self, position: int, event: TraceEvent, outcome: LaunchOutcome
    ) -> List[str]:
        recorded = event.decision
        assert recorded is not None
        replayed = outcome_decision(outcome)
        where = (
            f"event {position} (session {event.session!r}, "
            f"index {event.index}, kernel {event.spec.key!r})"
        )
        drift: List[str] = []
        if replayed.config != recorded.config:
            drift.append(
                f"{where}: config {replayed.config} != recorded {recorded.config}"
            )
        for name in _CHECKED_FIELDS:
            got, want = getattr(replayed, name), getattr(recorded, name)
            if got != want:
                drift.append(f"{where}: {name} {got!r} != recorded {want!r}")
        if replayed.fallback != recorded.fallback:
            drift.append(
                f"{where}: fallback {replayed.fallback} != recorded "
                f"{recorded.fallback}"
            )
        return drift

    def _event_chunks(self) -> List[List[Tuple[int, TraceEvent]]]:
        """Maximal distinct-session runs of the event stream, in order.

        A chunk closes as soon as a session repeats, so each chunk is a
        legal ``step_batch`` input and per-session event order is
        preserved across chunks.
        """
        return chunk_distinct_sessions(
            list(enumerate(self.trace.events)),
            key=lambda pair: pair[1].session,
        )

    def replay(self) -> ReplayReport:
        """Run the whole trace; returns the full report."""
        manager = self._build_manager()
        report = ReplayReport(
            trace=self.trace,
            registry=self.obs.registry,
            health=self.obs.health,
        )

        def consume(position: int, event: TraceEvent,
                    outcome: LaunchOutcome) -> None:
            report.outcomes.append(outcome)
            if self.check and event.decision is not None:
                report.checked += 1
                report.mismatches.extend(self._compare(position, event, outcome))

        if self.batched:
            for chunk in self._event_chunks():
                outcomes = manager.step_batch(
                    [event.as_launch() for _, event in chunk]
                )
                for (position, event), outcome in zip(chunk, outcomes):
                    consume(position, event, outcome)
        else:
            for position, event in enumerate(self.trace.events):
                consume(position, event, manager.dispatch(event.as_launch()))
        report.stats = {
            sid: manager.session(sid).stats for sid in manager.session_ids()
        }

        for assertion in self.trace.header.assertions:
            measured = report.metric(assertion.metric, assertion.session)
            report.assertion_results.append(
                AssertionResult(
                    assertion=assertion,
                    measured=measured,
                    passed=assertion.check(measured),
                )
            )

        sim_time = sum(
            manager.session(sid).sim_time_s for sid in manager.session_ids()
        )
        span = self.obs.tracer.start_span(
            "replay",
            at=0.0,
            trace=self.trace.header.name,
            source=self.trace.header.source,
            sessions=len(self.trace.header.sessions),
            launches=len(report.outcomes),
            checked=report.checked,
            mismatches=len(report.mismatches),
            assertions_failed=sum(
                1 for r in report.assertion_results if not r.passed
            ),
        )
        self.obs.tracer.end_span(span, at=sim_time)
        report.spans = self.obs.tracer.drain()
        return report


def stamp_decisions(trace: Trace, **replay_kwargs: Any) -> Trace:
    """Replay a trace once and attach its decisions to every event.

    The result is a *checking* trace: replaying it again (same models,
    same code) must reproduce every decision float-for-float.
    """
    report = TraceReplayer(trace, check=False, **replay_kwargs).replay()
    return trace.with_decisions([outcome_decision(o) for o in report.outcomes])


def trace_from_benchmark(
    name: str,
    *,
    policy: str = "mpc",
    invocations: int = 2,
    alpha: float = 0.05,
    adaptive_horizon: bool = True,
    predictor: str = "oracle",
) -> Trace:
    """Capture a Table-IV benchmark run as an (unstamped) trace.

    The performance target is computed once here — a Turbo Core run of
    the benchmark on the standard simulator — and stored explicitly in
    the policy spec, so replays never recompute it.

    Args:
        name: Benchmark name (see ``repro list``).
        policy: Managing policy kind (``mpc``, ``ppk``, ``turbo``).
        invocations: Back-to-back invocations to trace (MPC needs two:
            profiling, then steady state).
        alpha: Adaptive-horizon performance bound (MPC).
        adaptive_horizon: Disable for the full-horizon ablation (MPC).
        predictor: ``oracle`` or ``forest``.
    """
    if invocations <= 0:
        raise ValueError("invocations must be positive")
    app = benchmark(name)
    sim = Simulator()
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s

    session_id = app.name
    policy_spec = PolicySpec(
        kind=policy,
        target_throughput=target,
        alpha=alpha,
        adaptive_horizon=adaptive_horizon,
        predictor=predictor,
    )
    events = []
    for _ in range(invocations):
        for index, spec in enumerate(app.kernels):
            events.append(TraceEvent(index=index, session=session_id, spec=spec))
    header = TraceHeader(
        name=f"{name}-{policy}",
        source=f"record:{name}",
        sessions=(
            SessionSpec(
                session_id=session_id, app_name=app.name, policy=policy_spec
            ),
        ),
    )
    return Trace(header=header, events=tuple(events)).ensure_valid()
