"""Span-based decision tracing with explicit clock injection.

A :class:`Span` covers one unit of work — in this reproduction, one
kernel-launch decision cycle — and carries a flat attribute dict that
instrumented layers annotate as the launch flows through them: the
runtime stamps identity and observed telemetry, the MPC manager stamps
the decision mode / horizon / predictions, and the optimizer accumulates
its hill-climb step counts.

Timestamps are **never** read from the wall clock on the hot path.  The
tracer takes an injected ``clock`` callable, and callers that live in
simulated time (the session runtime) pass their own time explicitly via
``at=``, so two runs of the same workload produce byte-identical traces
regardless of host speed.

The disabled path is a shared :data:`NULL_TRACER` whose ``start_span``
returns one module-level no-op span: no allocation, no branching in
calling code.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, List, Optional

from contextlib import contextmanager

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "SPAN_SCHEMA"]

#: Version stamp written into every exported span.
SPAN_SCHEMA = 1


class Span:
    """One traced unit of work with annotated attributes."""

    __slots__ = ("name", "start_s", "end_s", "attributes")

    def __init__(self, name: str, start_s: float = 0.0) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = {}

    def annotate(self, key: str, value: Any) -> None:
        """Set one attribute (last writer wins)."""
        self.attributes[key] = value

    def inc(self, key: str, value: float = 1.0) -> None:
        """Accumulate a numeric attribute (creates it at 0)."""
        self.attributes[key] = self.attributes.get(key, 0.0) + value

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form, as written to trace sinks.

        The returned dict shares this span's attribute mapping: spans
        are single-shot, so by the time ``as_dict`` runs (at
        ``end_span``) nothing mutates the attributes anymore, and
        copying a dozen-entry dict per launch was pure hot-path cost.
        """
        return {
            "schema": SPAN_SCHEMA,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": self.attributes,
        }


class _NullSpan:
    """A do-nothing span; one shared module-level instance."""

    __slots__ = ()
    name = ""
    start_s = 0.0
    end_s = 0.0
    attributes: Dict[str, Any] = {}

    def annotate(self, key: str, value: Any) -> None:
        pass

    def inc(self, key: str, value: float = 1.0) -> None:
        pass

    def as_dict(self) -> Dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; tracks a per-thread current span for annotation.

    Args:
        clock: Injected time source used when ``at`` is not given to
            :meth:`start_span`/:meth:`end_span`.  Defaults to a frozen
            zero clock — deliberately **not** the wall clock; callers
            with a meaningful notion of time (simulated or otherwise)
            must inject one or pass ``at`` explicitly.
        sink: Optional callable invoked with each finished span's
            :meth:`~Span.as_dict` (e.g. a streaming JSONL writer).
        keep: Whether finished spans are retained on :attr:`spans`
            (disable for unbounded streams feeding only a sink).
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        keep: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.sink = sink
        self.keep = keep
        self.spans: List[Dict[str, Any]] = []
        self._local = threading.local()

    # ----- span lifecycle ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start_span(self, name: str, at: Optional[float] = None,
                   **attributes: Any) -> Span:
        """Open a span and make it the thread's current one."""
        span = Span(name, start_s=self.clock() if at is None else at)
        if attributes:
            span.attributes.update(attributes)
        self._stack().append(span)
        return span

    def end_span(self, span: Span, at: Optional[float] = None) -> Dict[str, Any]:
        """Close a span, pop it, and deliver it to the sink/buffer."""
        span.end_s = self.clock() if at is None else at
        stack = self._stack()
        # LIFO fast path: the span being ended is almost always the
        # innermost one, so a tail pop beats the linear scan.
        if stack:
            if stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)
        payload = span.as_dict()
        self.emit(payload)
        return payload

    def emit(self, payload: Dict[str, Any]) -> None:
        """Deliver an already-serialized span (e.g. from a worker)."""
        if self.keep:
            self.spans.append(payload)
        if self.sink is not None:
            self.sink(payload)

    @contextmanager
    def span(self, name: str, at: Optional[float] = None,
             **attributes: Any) -> Iterator[Span]:
        """Context-manager form of start/end."""
        span = self.start_span(name, at=at, **attributes)
        try:
            yield span
        finally:
            self.end_span(span, at=at if at is not None else None)

    # ----- annotation of the current span ----------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, key: str, value: Any) -> None:
        """Set an attribute on the current span (no-op when none)."""
        span = self.current()
        if span is not None:
            span.annotate(key, value)

    def inc(self, key: str, value: float = 1.0) -> None:
        """Accumulate a numeric attribute on the current span."""
        span = self.current()
        if span is not None:
            span.inc(key, value)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the buffered finished spans."""
        spans, self.spans = self.spans, []
        return spans


class NullTracer:
    """The disabled tracer: shared no-op span, zero retained state."""

    enabled = False
    spans: List[Dict[str, Any]] = []

    def start_span(self, name: str, at: Optional[float] = None,
                   **attributes: Any) -> Any:
        return _NULL_SPAN

    def end_span(self, span: Any, at: Optional[float] = None) -> Dict[str, Any]:
        return {}

    def emit(self, payload: Dict[str, Any]) -> None:
        pass

    @contextmanager
    def span(self, name: str, at: Optional[float] = None,
             **attributes: Any) -> Iterator[Any]:
        yield _NULL_SPAN

    def current(self) -> Optional[Any]:
        return None

    def annotate(self, key: str, value: Any) -> None:
        pass

    def inc(self, key: str, value: float = 1.0) -> None:
        pass

    def drain(self) -> List[Dict[str, Any]]:
        return []


#: Shared no-op tracer; the default everywhere instrumentation is optional.
NULL_TRACER = NullTracer()
