"""Process-wide metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` names and owns every metric of one process.
All primitives are label-aware (one time series per label set), guarded
by a single registry lock, and — crucially for the experiment engine —
**mergeable**: :meth:`MetricsRegistry.snapshot` captures a registry as a
JSON-able dict that travels across a ``ProcessPoolExecutor`` boundary,
and :meth:`MetricsRegistry.merge` folds such a snapshot into another
registry (counters and histograms add, gauges take the incoming value,
and a ``sources`` count records how many registries contributed, so
provenance is never lost when worker metrics are shipped back to the
parent).

Instrumentation must cost nothing when disabled, so the module also
provides :data:`NULL_REGISTRY`: a registry whose factory methods hand
back shared no-op singletons without allocating.  Hot paths therefore
never branch on an "enabled" flag — they call the same methods on
either a real or a null object.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BoundCounter",
    "BoundGauge",
    "BoundHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Version stamp of the snapshot payload layout.
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: microsecond decisions to multi-second experiment tasks).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0,
)

#: Canonical label-set key: a sorted tuple of (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# repro-lint: shared-state=_series
class _Bound:
    """One label set of a metric with its key pre-resolved.

    The ``**labels`` API canonicalizes (stringify + sort) the label set
    on every call; hot paths that hit the same series thousands of
    times per second (the health monitor's per-decision counters) bind
    the series once via :meth:`_Metric.labelled` and mutate the parent
    metric's storage directly — snapshot/merge/exposition are
    unaffected, only the per-call label work disappears.
    """

    __slots__ = ("_lock", "_series", "_key")

    def __init__(self, metric: "_Metric", key: LabelKey) -> None:
        self._lock = metric._lock
        self._series = metric._series
        self._key = key


class BoundCounter(_Bound):
    """Pre-resolved counter series (monotonic)."""

    __slots__ = ()

    def inc(self, value: float = 1.0) -> None:
        with self._lock:
            self.inc_unlocked(value)

    # repro-lint: requires-lock=lock
    def inc_unlocked(self, value: float = 1.0) -> None:
        """:meth:`inc` for callers already holding the registry lock."""
        if value < 0:
            raise ValueError("counters can only increase")
        series, key = self._series, self._key
        series[key] = series.get(key, 0.0) + value


class BoundGauge(_Bound):
    """Pre-resolved gauge series."""

    __slots__ = ()

    def set(self, value: float) -> None:
        with self._lock:
            self._series[self._key] = float(value)

    # repro-lint: requires-lock=lock
    def set_unlocked(self, value: float) -> None:
        """:meth:`set` for callers already holding the registry lock."""
        self._series[self._key] = float(value)

    def inc(self, value: float = 1.0) -> None:
        series, key = self._series, self._key
        with self._lock:
            series[key] = series.get(key, 0.0) + value


class BoundHistogram(_Bound):
    """Pre-resolved histogram series."""

    __slots__ = ("_buckets",)

    def __init__(self, metric: "Histogram", key: LabelKey) -> None:
        super().__init__(metric, key)
        self._buckets = metric.buckets

    def observe(self, value: float) -> None:
        with self._lock:
            self.observe_unlocked(value)

    # repro-lint: requires-lock=lock
    def observe_unlocked(self, value: float) -> None:
        """:meth:`observe` for callers already holding the registry lock."""
        state = self._series.get(self._key)
        if state is None:
            buckets = self._buckets
            state = self._series[self._key] = {
                "counts": [0] * (len(buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        for index, bound in enumerate(self._buckets):
            if value <= bound:
                state["counts"][index] += 1
                break
        else:
            state["counts"][-1] += 1
        state["sum"] += value
        state["count"] += 1


# repro-lint: shared-state=_series
class _Metric:
    """Shared plumbing of all labelled metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, Any] = {}

    def series(self) -> Dict[LabelKey, Any]:
        """A point-in-time copy of every label set's value."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def labelled(self, **labels: Any) -> BoundCounter:
        """A :class:`BoundCounter` handle for one label set."""
        return BoundCounter(self, _label_key(labels))

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (must be non-negative) to a label set."""
        self._inc_key(_label_key(labels), value)

    def _inc_key(self, key: LabelKey, value: float) -> None:
        if value < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0.0 when never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A labelled value that can go up and down."""

    kind = "gauge"

    def labelled(self, **labels: Any) -> BoundGauge:
        """A :class:`BoundGauge` handle for one label set."""
        return BoundGauge(self, _label_key(labels))

    def set(self, value: float, **labels: Any) -> None:
        """Set a label set to ``value``."""
        self._set_key(_label_key(labels), value)

    def _set_key(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Adjust a label set by ``value`` (may be negative)."""
        self._inc_key(_label_key(labels), value)

    def _inc_key(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0.0 when never set)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class Histogram(_Metric):
    """A fixed-bucket labelled histogram.

    Buckets are upper bounds (ascending); every observation lands in the
    first bucket whose bound is >= the value, or the implicit ``+Inf``
    overflow bucket.  Per label set the histogram keeps the per-bucket
    counts plus the running sum and count, which is exactly what the
    Prometheus text exposition needs.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly ascending")
        self.buckets = bounds

    def labelled(self, **labels: Any) -> BoundHistogram:
        """A :class:`BoundHistogram` handle for one label set."""
        return BoundHistogram(self, _label_key(labels))

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into a label set."""
        self._observe_key(_label_key(labels), value)

    def _observe_key(self, key: LabelKey, value: float) -> None:
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][index] += 1
                    break
            else:
                state["counts"][-1] += 1
            state["sum"] += value
            state["count"] += 1

    def count(self, **labels: Any) -> int:
        """Total observations of one label set."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state["count"] if state else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observed values of one label set."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state["sum"] if state else 0.0


# repro-lint: shared-state=_metrics,sources
class MetricsRegistry:
    """Thread-safe, mergeable home of one process's metrics.

    Metric factories are idempotent: asking twice for the same name
    returns the same object; asking for an existing name as a different
    kind (or a histogram with different buckets) raises, because the
    merge and export layers rely on one stable definition per name.
    """

    enabled = True

    def __init__(self) -> None:
        #: The registry-wide lock every metric shares.  Hot paths that
        #: make several writes per event may hold it once and use the
        #: ``*_unlocked`` bound-metric variants.
        self.lock = self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        #: How many registries' worth of data this one holds (grows by
        #: the incoming snapshot's ``sources`` on every :meth:`merge`).
        self.sources = 1

    # ----- factories -------------------------------------------------------------

    def _get(self, name: str, kind: type, help: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            if (
                isinstance(metric, Histogram)
                and "buckets" in kwargs
                and metric.buckets != tuple(float(b) for b in kwargs["buckets"])
            ):
                raise ValueError(
                    f"histogram {name!r} already registered with "
                    f"different buckets"
                )
            return metric
        metric = kind(name, help, self._lock, **kwargs)
        with self._lock:
            return self._metrics.setdefault(name, metric)

    def counter(self, name: str, help: str = "") -> Counter:
        """The named counter, created on first use."""
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The named gauge, created on first use."""
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The named fixed-bucket histogram, created on first use."""
        return self._get(name, Histogram, help, buckets=buckets)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # ----- snapshot / merge -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a JSON-able dict (safe to pickle/ship)."""
        out: Dict[str, Any] = {"schema": SNAPSHOT_SCHEMA, "sources": self.sources}
        metrics = []
        for metric in self.metrics():
            entry: Dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "series": [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(metric.series().items())
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics.append(entry)
        out["metrics"] = metrics
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last writer wins); :attr:`sources` grows by the
        snapshot's own source count, so provenance survives arbitrary
        merge trees.
        """
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema: {snapshot.get('schema')!r}"
            )
        for entry in snapshot["metrics"]:
            name, kind = entry["name"], entry["kind"]
            if kind == "counter":
                metric: Any = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), buckets=entry["buckets"]
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            for raw_key, value in entry["series"]:
                key = tuple((k, v) for k, v in raw_key)
                with self._lock:
                    if kind == "gauge":
                        metric._series[key] = float(value)
                    elif kind == "counter":
                        metric._series[key] = (
                            metric._series.get(key, 0.0) + float(value)
                        )
                    else:
                        state = metric._series.get(key)
                        if state is None:
                            state = {
                                "counts": [0] * (len(metric.buckets) + 1),
                                "sum": 0.0,
                                "count": 0,
                            }
                            metric._series[key] = state
                        state["counts"] = [
                            a + b
                            for a, b in zip(state["counts"], value["counts"])
                        ]
                        state["sum"] += float(value["sum"])
                        state["count"] += int(value["count"])
        # Inside the frame: a racing snapshot_and_reset must never see
        # merged series paired with a stale source count (RL012).
        with self._lock:
            self.sources += int(snapshot.get("sources", 1))

    def snapshot_and_reset(self) -> Dict[str, Any]:
        """Snapshot, then clear every series (keeps definitions).

        Engine workers call this after each task so successive
        ship-backs never double-count.
        """
        snap = self.snapshot()
        with self._lock:
            for metric in self._metrics.values():
                # Clear in place: bound handles (``labelled()``) alias
                # the series dict and must survive the reset.
                metric._series.clear()
            # Reset under the same frame as the series it describes,
            # so concurrent merge() calls cannot interleave (RL012).
            self.sources = 1
        return snap


# ----- the no-op fast path ---------------------------------------------------


class _NullMetric:
    """A do-nothing stand-in for every metric kind; one shared instance."""

    name = ""
    help = ""
    kind = "null"
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def inc_unlocked(self, value: float = 1.0) -> None:
        pass

    def set_unlocked(self, value: float) -> None:
        pass

    def observe_unlocked(self, value: float) -> None:
        pass

    def labelled(self, **labels: Any) -> "_NullMetric":
        return self

    def value(self, **labels: Any) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def series(self) -> Dict[LabelKey, Any]:
        return {}


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """The disabled registry: every factory returns one shared no-op.

    Calling code never allocates on this path — the factories hand back
    the module-level singleton and every mutation is a ``pass``.
    """

    enabled = False
    sources = 0

    #: Shared lock so ``registry.lock`` is usable without branching.
    lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Any:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> Any:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Any:
        return _NULL_METRIC

    def metrics(self) -> List[Any]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"schema": SNAPSHOT_SCHEMA, "sources": 0, "metrics": []}

    def snapshot_and_reset(self) -> Dict[str, Any]:
        return self.snapshot()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass


#: Shared no-op registry; the default everywhere instrumentation is optional.
NULL_REGISTRY = NullMetricsRegistry()


def registry_or_null(registry: Optional[Any]) -> Any:
    """``registry`` if given, else the shared no-op registry."""
    return registry if registry is not None else NULL_REGISTRY
