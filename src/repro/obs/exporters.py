"""Pluggable exporters: JSONL traces, Prometheus text, summary tables.

Three consumption styles for the same observability data:

* **JSONL trace sink** — one span per line, keys sorted, so traces are
  byte-comparable across runs and machines (:class:`JsonlTraceSink`,
  :func:`write_jsonl`, :func:`read_jsonl`).
* **Prometheus text exposition** — the registry rendered in the
  ``# TYPE`` / ``name{label="v"} value`` format scrapers and
  ``promtool`` understand (:func:`prometheus_text`).
* **Human summary** — per-policy aggregates of a trace, including the
  overhead-fraction accounting Figure 14 uses
  (:func:`summarize_spans`, :func:`format_summary`).

The module also ships a dependency-free structural validator for the
checked-in trace schema (:func:`validate_span`), which CI uses to keep
the JSONL contract honest.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "JsonlTraceSink",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "write_prometheus",
    "summarize_spans",
    "format_summary",
    "validate_span",
    "validate_trace_file",
]


def _span_dict(span: Any) -> Dict[str, Any]:
    return span if isinstance(span, dict) else span.as_dict()


# ----- JSONL traces ----------------------------------------------------------


class JsonlTraceSink:
    """Streams finished spans to a JSONL file as they end.

    Usable directly as a :class:`~repro.obs.tracing.Tracer` ``sink``.
    Lines are written with sorted keys and no wall-clock metadata, so
    identical runs produce identical files.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def __call__(self, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path!r} already closed")
        json.dump(payload, self._handle, sort_keys=True)
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_jsonl(spans: Iterable[Any], path: str) -> int:
    """Write spans (dicts or Span objects) to a JSONL file.

    Returns:
        The number of spans written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            json.dump(_span_dict(span), handle, sort_keys=True)
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load every span of a JSONL trace file (blank lines skipped)."""
    spans: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid trace line: {exc}"
                ) from exc
    return spans


# ----- Prometheus text exposition --------------------------------------------


def _prom_labels(key: Iterable[Iterable[str]]) -> str:
    pairs = [tuple(pair) for pair in key]
    if not pairs:
        return ""
    rendered = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs
    )
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _escape_help(value: str) -> str:
    # HELP text escaping per the exposition format: only backslash and
    # newline (double quotes are legal in help text, unlike labels).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(registry: Any) -> str:
    """Render a registry (or a snapshot dict) as Prometheus text.

    Every metric family gets exactly one ``# HELP``/``# TYPE`` pair
    (help falls back to the metric name so parsers that require the
    line never break), histograms expose cumulative ``_bucket{le=...}``
    series ending in ``+Inf`` plus ``_sum`` and ``_count`` — the
    ``promtool check metrics`` exposition contract.
    """
    snapshot = registry if isinstance(registry, dict) else registry.snapshot()
    lines: List[str] = []
    seen: set = set()
    for entry in snapshot["metrics"]:
        name, kind = entry["name"], entry["kind"]
        if name in seen:
            raise ValueError(f"duplicate metric family {name!r} in snapshot")
        seen.add(name)
        lines.append(f"# HELP {name} {_escape_help(entry.get('help') or name)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            for key, value in entry["series"]:
                lines.append(f"{name}{_prom_labels(key)} {_fmt(value)}")
        elif kind == "histogram":
            bounds = entry["buckets"]
            for key, state in entry["series"]:
                pairs = [tuple(pair) for pair in key]
                cumulative = 0
                for bound, count in zip(bounds, state["counts"]):
                    cumulative += count
                    labels = _prom_labels(pairs + [("le", _fmt(bound))])
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += state["counts"][-1]
                labels = _prom_labels(pairs + [("le", "+Inf")])
                lines.append(f"{name}_bucket{labels} {cumulative}")
                lines.append(f"{name}_sum{_prom_labels(pairs)} {_fmt(state['sum'])}")
                lines.append(f"{name}_count{_prom_labels(pairs)} {state['count']}")
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: Any, path: str) -> str:
    """Write the Prometheus exposition of a registry to ``path``."""
    text = prometheus_text(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


# ----- human-readable summary -------------------------------------------------


def summarize_spans(spans: Iterable[Any]) -> Dict[str, Any]:
    """Aggregate a trace into per-(session, policy) groups.

    For every group the summary reports launch counts, kernel and
    overhead time, the **overhead fraction** ``overhead / (kernel +
    overhead)`` — the same numerator/denominator split behind the α
    budget of the adaptive horizon — plus decision quality counters
    (fail-safes, fault fallbacks, pattern misses, mean horizon, model
    evaluations, hill-climb steps).  When the trace contains a Turbo
    Core group for the same app, each MPC group also reports
    ``overhead_vs_turbo_pct``: overhead time relative to the baseline's
    total time, exactly the Figure 14 performance-overhead metric.
    """
    groups: Dict[Any, Dict[str, Any]] = {}
    for raw in spans:
        span = _span_dict(raw)
        if span.get("name") != "launch":
            continue
        attrs = span.get("attributes", {})
        key = (attrs.get("session", ""), attrs.get("app", ""),
               attrs.get("policy", ""))
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "session": key[0],
                "app": key[1],
                "policy": key[2],
                "launches": 0,
                "kernel_time_s": 0.0,
                "overhead_time_s": 0.0,
                "energy_j": 0.0,
                "model_evaluations": 0,
                "hill_climb_steps": 0,
                "fail_safe": 0,
                "fallbacks": 0,
                "pattern_misses": 0,
                "tdp_throttled": 0,
                "horizon_total": 0,
                "errors": [],
            }
        group["launches"] += 1
        group["kernel_time_s"] += attrs.get("time_s", 0.0)
        group["overhead_time_s"] += attrs.get("overhead_time_s", 0.0)
        group["energy_j"] += attrs.get("energy_j", 0.0)
        group["energy_j"] += attrs.get("overhead_energy_j", 0.0)
        group["model_evaluations"] += attrs.get("model_evaluations", 0)
        group["hill_climb_steps"] += int(attrs.get("hill_climb_steps", 0))
        group["fail_safe"] += bool(attrs.get("fail_safe", False))
        group["fallbacks"] += bool(attrs.get("fallback", False))
        group["pattern_misses"] += not attrs.get("pattern_hit", True)
        group["tdp_throttled"] += bool(attrs.get("tdp_throttled", False))
        group["horizon_total"] += attrs.get("horizon", 0)
        if "error" in attrs:
            group["errors"].append(attrs["error"])

    baselines: Dict[str, float] = {}
    for group in groups.values():
        if group["policy"] in ("TurboCore", "Turbo Core", "turbo"):
            total = group["kernel_time_s"] + group["overhead_time_s"]
            baselines[group["app"]] = total

    ordered = []
    for key in sorted(groups):
        group = groups[key]
        total = group["kernel_time_s"] + group["overhead_time_s"]
        group["total_time_s"] = total
        group["overhead_fraction"] = (
            group["overhead_time_s"] / total if total > 0 else 0.0
        )
        group["mean_horizon"] = (
            group["horizon_total"] / group["launches"]
            if group["launches"] else 0.0
        )
        baseline = baselines.get(group["app"])
        if baseline:
            group["overhead_vs_turbo_pct"] = (
                100.0 * group["overhead_time_s"] / baseline
            )
        ordered.append(group)
    return {"groups": ordered, "launches": sum(g["launches"] for g in ordered)}


def format_summary(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize_spans` output as an aligned text table."""
    headers = [
        "session", "policy", "launches", "kernel ms", "overhead ms",
        "ovh frac %", "vs turbo %", "mean H", "evals", "climb", "failsafe",
        "faults",
    ]

    def row(group: Dict[str, Any]) -> List[str]:
        vs_turbo = group.get("overhead_vs_turbo_pct")
        return [
            group["session"] or group["app"],
            group["policy"],
            str(group["launches"]),
            f"{group['kernel_time_s'] * 1e3:.2f}",
            f"{group['overhead_time_s'] * 1e3:.3f}",
            f"{100.0 * group['overhead_fraction']:.3f}",
            "-" if vs_turbo is None else f"{vs_turbo:.3f}",
            f"{group['mean_horizon']:.1f}",
            str(group["model_evaluations"]),
            str(group["hill_climb_steps"]),
            str(group["fail_safe"]),
            str(group["fallbacks"]),
        ]

    table = [headers] + [row(g) for g in summary["groups"]]
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = [f"trace summary: {summary['launches']} launch span(s)"]
    for i, r in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    for group in summary["groups"]:
        for error in group["errors"]:
            lines.append(f"  fault[{group['session']}/{group['policy']}]: {error}")
    return "\n".join(lines)


# ----- schema validation ------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_span(span: Dict[str, Any], schema: Dict[str, Any],
                  path: str = "$") -> List[str]:
    """Structurally validate one span against a mini JSON schema.

    Supports the subset used by the checked-in trace schemas: ``type``
    (a name or list of names), ``required``, nested ``properties``, and
    a top-level ``oneOf`` branch list (a value is valid when any branch
    accepts it; on failure the closest branch's problems are reported).
    Returns a list of human-readable problems (empty when valid), so no
    third-party jsonschema dependency is needed.
    """
    branches = schema.get("oneOf")
    if branches is not None:
        attempts = [validate_span(span, branch, path) for branch in branches]
        best = min(attempts, key=len)
        suffix = f" (closest of {len(branches)} oneOf branches)"
        return [problem + suffix for problem in best]
    problems: List[str] = []
    expected: Union[str, List[str], None] = schema.get("type")
    if expected is not None:
        names = [expected] if isinstance(expected, str) else list(expected)
        if not any(_TYPE_CHECKS[name](span) for name in names):
            problems.append(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(span).__name__}"
            )
            return problems
    if isinstance(span, dict):
        for key in schema.get("required", ()):
            if key not in span:
                problems.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in span:
                problems.extend(
                    validate_span(span[key], subschema, f"{path}.{key}")
                )
    return problems


def validate_trace_file(path: str, schema: Dict[str, Any]) -> List[str]:
    """Validate every span of a JSONL trace; returns all problems."""
    problems: List[str] = []
    for index, span in enumerate(read_jsonl(path)):
        for problem in validate_span(span, schema, path=f"span[{index}]"):
            problems.append(problem)
    return problems
