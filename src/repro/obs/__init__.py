"""``repro.obs`` — decision tracing, metrics, and exporters.

The observability layer of the reproduction (see
``docs/OBSERVABILITY.md``).  One :class:`Instrumentation` object bundles
the two primitives every instrumented layer takes:

* a :class:`~repro.obs.metrics.MetricsRegistry` of process-wide
  counters / gauges / histograms, snapshot-and-mergeable across the
  experiment engine's worker processes, and
* a :class:`~repro.obs.tracing.Tracer` producing one structured span
  per kernel launch with the decision internals the paper's runtime
  figures are about (predicted vs. observed IPS/power, hill-climb
  steps, horizon choice, fail-safe and fault events).

The default everywhere is :data:`NOOP` — shared null objects whose
methods do nothing and allocate nothing — so instrumentation is
zero-cost unless explicitly enabled, and the golden-result suite is
bit-identical with the layer present.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.health import (
    DEFAULT_HEALTH_CONFIG,
    HealthConfig,
    HealthMonitor,
    HealthState,
    NULL_HEALTH,
    NullHealthMonitor,
    format_health_report,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HEALTH_CONFIG",
    "Gauge",
    "HealthConfig",
    "HealthMonitor",
    "HealthState",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NOOP",
    "NULL_HEALTH",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullHealthMonitor",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "format_health_report",
    "make_instrumentation",
    "publish_cache_stats",
    "publish_session_stats",
]


class Instrumentation:
    """A registry/tracer pair handed through the instrumented layers.

    Layers accept ``obs: Optional[Instrumentation] = None`` and fall
    back to :data:`NOOP`; sharing one object across the session
    runtime, the MPC manager, and its optimizer is what makes their
    annotations land on the same per-launch span.
    """

    __slots__ = ("registry", "tracer", "health")

    def __init__(self, registry: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 health: Optional[Any] = None) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.health = health if health is not None else NULL_HEALTH

    @property
    def enabled(self) -> bool:
        """Whether any part of this instrumentation is live."""
        return bool(
            self.registry.enabled or self.tracer.enabled or self.health.enabled
        )


#: The shared disabled instrumentation; safe to use from any thread.
NOOP = Instrumentation(NULL_REGISTRY, NULL_TRACER, NULL_HEALTH)


def or_noop(obs: Optional[Instrumentation]) -> Instrumentation:
    """``obs`` if given, else the shared no-op instrumentation."""
    return obs if obs is not None else NOOP


def make_instrumentation(
    clock: Optional[Callable[[], float]] = None,
    sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    keep_spans: bool = True,
    health: bool = False,
    health_config: Optional[HealthConfig] = None,
) -> Instrumentation:
    """A live registry + tracer pair (optionally with a health monitor).

    Args:
        clock: Injected tracer time source (defaults to a frozen zero
            clock; the session runtime stamps simulated time onto its
            spans explicitly, so most callers never need one).
        sink: Optional per-span streaming sink (e.g.
            :class:`~repro.obs.exporters.JsonlTraceSink`).
        keep_spans: Whether the tracer buffers finished spans in memory
            for post-run export.
        health: Install a :class:`~repro.obs.health.HealthMonitor`
            sharing this registry/tracer, so every launch decision
            feeds the model-health ledgers and drift detectors.
        health_config: Monitor thresholds (default
            :data:`~repro.obs.health.DEFAULT_HEALTH_CONFIG`).
    """
    registry = MetricsRegistry()
    tracer = Tracer(clock=clock, sink=sink, keep=keep_spans)
    monitor = (
        HealthMonitor(registry, tracer, health_config) if health else None
    )
    return Instrumentation(registry, tracer, monitor)


# ----- stats bridges ---------------------------------------------------------
#
# CacheStats / SessionStats / EngineStats predate the registry; these
# bridges publish their point-in-time values as gauges so engine runs
# can report per-worker and aggregate stats through one exporter.
# Gauges (not counters) because the stats objects are themselves
# accumulators: re-publishing overwrites instead of double-counting.


def publish_cache_stats(registry: Any, stats: Any, **labels: Any) -> None:
    """Publish a :class:`~repro.engine.cache.CacheStats` as gauges."""
    for name in ("hits", "misses", "corrupt", "stores", "sources"):
        registry.gauge(
            f"repro_cache_{name}",
            f"Result-cache {name} (point-in-time of the stats object)",
        ).set(getattr(stats, name), **labels)
    registry.gauge(
        "repro_cache_load_seconds", "Result-cache time spent reading entries"
    ).set(stats.load_s, **labels)
    registry.gauge(
        "repro_cache_store_seconds", "Result-cache time spent writing entries"
    ).set(stats.store_s, **labels)


def publish_session_stats(registry: Any, stats: Any, **labels: Any) -> None:
    """Publish a :class:`~repro.runtime.session.SessionStats` as gauges."""
    for name in (
        "runs", "launches", "model_evaluations", "fail_safe_decisions",
        "fail_safe_fallbacks", "observe_failures", "sources",
    ):
        registry.gauge(
            f"repro_session_{name}",
            f"Session {name} (point-in-time of the stats object)",
        ).set(getattr(stats, name), **labels)
    registry.gauge(
        "repro_session_kernel_seconds", "Session total kernel time"
    ).set(stats.kernel_time_s, **labels)
    registry.gauge(
        "repro_session_overhead_seconds", "Session total optimizer overhead"
    ).set(stats.overhead_time_s, **labels)
    registry.gauge(
        "repro_session_energy_joules", "Session total chip energy"
    ).set(stats.energy_j, **labels)
