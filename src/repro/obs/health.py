"""``repro.obs.health`` — streaming model-health monitoring.

The MPC manager stands or falls on its predictor staying accurate
(paper Fig. 13); this module watches that accuracy *while the manager
runs*.  A :class:`HealthMonitor` consumes the per-launch decision spans
the session runtime already produces and maintains, per session:

* an **error ledger** — windowed relative-error histograms and EWMAs of
  ``|predicted - observed| / observed`` for IPS and power, per kernel,
  backed by the shared :class:`~repro.obs.metrics.MetricsRegistry` so
  worker→parent snapshot/merge and ``step_batch`` aggregation work
  unchanged;
* **drift detectors** — a Page–Hinkley test and a windowed mean-shift
  test over the trusted error stream, plus a budget-collapse detector
  over consecutive exhausted-horizon fail-safe skips.  All three are
  deterministic functions of the span stream: no wall clock, no RNG
  (RL001/RL002 clean);
* an **alerting state machine** — ``HEALTHY → DEGRADED → UNTRUSTED``
  with configurable thresholds and recovery hysteresis, surfaced as
  ``repro_health_*`` metrics and ``health`` transition spans
  (``docs/trace.schema.json``).

Sample gating — the part that makes the detectors trustworthy:

* **Profiling launches** (PPK mode before the model is frozen, i.e.
  ``mode == "ppk"`` with no ``pattern_hit`` annotation) are excluded
  entirely: the PPK predictor is one step behind by construction and
  its errors say nothing about the frozen model.
* The **ledger** ingests every remaining prediction, including
  fail-safe-caught ones — that is the Fig.13-style accuracy view.
* The **detectors** only consume *trusted* samples: MPC-mode decisions
  that were neither fail-safe nor fault fallbacks.  Fail-safe launches
  already carry their own signal (the manager reverted), and feeding
  their errors to the detectors would flag scenarios the fail-safe
  fully contains (e.g. the phase-shift family) as drifted.

Everything here only *reads* the span payloads it is handed (RL005:
observability never mutates the observed system).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, SPAN_SCHEMA

__all__ = [
    "DEFAULT_HEALTH_CONFIG",
    "ERROR_BUCKETS",
    "HEALTH_SCHEMA",
    "HealthConfig",
    "HealthMonitor",
    "HealthState",
    "MeanShift",
    "NULL_HEALTH",
    "NullHealthMonitor",
    "PageHinkley",
    "QUANTITIES",
    "SessionHealth",
    "format_health_report",
]

#: Version stamp of :meth:`HealthMonitor.report` payloads.
HEALTH_SCHEMA = 1

#: Relative-error histogram buckets (1% .. 5x; +Inf is implicit).
ERROR_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 2.0, 5.0)

#: The two predicted-vs-observed quantities every decision span carries.
QUANTITIES = ("ips", "power")

#: (quantity, predicted attr, observed attr) span keys, in ledger order.
_QUANTITY_KEYS = (
    ("ips", "predicted_ips", "observed_ips"),
    ("power", "predicted_power_w", "observed_power_w"),
)


class HealthState(IntEnum):
    """Per-session model-health level, ordered by severity."""

    HEALTHY = 0
    DEGRADED = 1
    UNTRUSTED = 2


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the health monitor (immutable; RL006-safe).

    Attributes:
        window: Trusted-sample window retained per quantity for the
            report's windowed mean/max columns.
        ewma_alpha: Smoothing factor of the per-quantity error EWMA.
        degraded_error: EWMA level above which a session is at least
            ``DEGRADED``.
        untrusted_error: EWMA level above which a session is
            ``UNTRUSTED``.
        recovery_samples: Consecutive trusted samples with EWMA at or
            below ``degraded_error`` needed to de-escalate one level
            (the hysteresis guard against flapping).
        warmup_samples: Trusted samples a session must accumulate
            before the error-stream detectors (EWMA floor,
            Page–Hinkley, mean-shift) may escalate its state.  Ledgers,
            EWMAs, and detector state update from the first sample;
            only the *alarms* wait — a distribution claim needs data,
            and a single extreme sample must not condemn a session.
            The budget-collapse detector is outcome-based and is never
            gated.
        ph_delta: Page–Hinkley drift allowance per sample.
        ph_threshold: Page–Hinkley cumulative-deviation trip level.
        shift_window: Half-window (samples) of the mean-shift detector;
            it compares the most recent ``shift_window`` samples
            against the ``shift_window`` before them.
        shift_threshold: Mean increase between the two halves that
            counts as a shift.
        skip_cascade: Consecutive exhausted-horizon fail-safe ``skip``
            decisions that count as a budget collapse.
    """

    window: int = 32
    ewma_alpha: float = 0.25
    degraded_error: float = 0.5
    untrusted_error: float = 1.5
    recovery_samples: int = 8
    warmup_samples: int = 16
    ph_delta: float = 0.05
    ph_threshold: float = 2.0
    shift_window: int = 8
    shift_threshold: float = 0.35
    skip_cascade: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.degraded_error <= 0:
            raise ValueError(
                f"degraded_error must be > 0, got {self.degraded_error}"
            )
        if self.untrusted_error < self.degraded_error:
            raise ValueError(
                "untrusted_error must be >= degraded_error "
                f"({self.untrusted_error} < {self.degraded_error})"
            )
        if self.recovery_samples < 1:
            raise ValueError(
                f"recovery_samples must be >= 1, got {self.recovery_samples}"
            )
        if self.warmup_samples < 1:
            raise ValueError(
                f"warmup_samples must be >= 1, got {self.warmup_samples}"
            )
        if self.ph_delta < 0:
            raise ValueError(f"ph_delta must be >= 0, got {self.ph_delta}")
        if self.ph_threshold <= 0:
            raise ValueError(
                f"ph_threshold must be > 0, got {self.ph_threshold}"
            )
        if self.shift_window < 1:
            raise ValueError(
                f"shift_window must be >= 1, got {self.shift_window}"
            )
        if self.shift_threshold <= 0:
            raise ValueError(
                f"shift_threshold must be > 0, got {self.shift_threshold}"
            )
        if self.skip_cascade < 1:
            raise ValueError(
                f"skip_cascade must be >= 1, got {self.skip_cascade}"
            )


#: The default knobs; shared because the config is frozen.
DEFAULT_HEALTH_CONFIG = HealthConfig()


class PageHinkley:
    """Page–Hinkley test for an upward shift in a stream's mean.

    Tracks the cumulative deviation of each sample from the running
    mean (minus a per-sample allowance ``delta``); fires when the
    cumulative sum rises more than ``threshold`` above its running
    minimum, then resets itself so repeated drifts re-arm.
    """

    __slots__ = ("delta", "threshold", "count", "mean", "cumulative", "minimum")

    def __init__(self, delta: float = 0.05, threshold: float = 2.0) -> None:
        self.delta = delta
        self.threshold = threshold
        self.count = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0

    def reset(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0

    def update(self, value: float) -> bool:
        """Ingest one sample; ``True`` when a drift fires."""
        self.count += 1
        self.mean += (value - self.mean) / self.count
        self.cumulative += value - self.mean - self.delta
        if self.cumulative < self.minimum:
            self.minimum = self.cumulative
        if self.cumulative - self.minimum > self.threshold:
            self.reset()
            return True
        return False


class MeanShift:
    """Windowed mean-shift test: recent half-window vs. the one before.

    Fires when the mean of the newest ``window`` samples exceeds the
    mean of the preceding ``window`` samples by more than
    ``threshold``, then clears its buffer so the same shift is not
    reported twice.

    The buffer is a fixed ring with incremental half-window sums: an
    update costs O(1) instead of re-summing ``2 * window`` samples,
    which matters because the health monitor runs two of these per
    trusted decision on the manager's hot path.
    """

    __slots__ = (
        "window", "threshold", "_buf", "_head", "_size", "_older", "_recent",
        "_trip",
    )

    def __init__(self, window: int = 8, threshold: float = 0.35) -> None:
        self.window = window
        self.threshold = threshold
        self._buf = [0.0] * (2 * window)
        self._head = 0
        self._size = 0
        self._older = 0.0  # sum of the first `window` buffered samples
        self._recent = 0.0  # sum of the last `window` buffered samples
        # mean(recent) - mean(older) > threshold, in sum space.
        self._trip = threshold * window

    def reset(self) -> None:
        self._head = 0
        self._size = 0
        self._older = 0.0
        self._recent = 0.0

    @property
    def values(self) -> Tuple[float, ...]:
        """The buffered samples, oldest first (inspection only)."""
        cap = 2 * self.window
        return tuple(
            self._buf[(self._head + i) % cap] for i in range(self._size)
        )

    def update(self, value: float) -> bool:
        """Ingest one sample; ``True`` when a shift fires."""
        window = self.window
        cap = 2 * window
        size = self._size
        if size < cap:
            # Filling: head is 0 until the ring wraps for the first time.
            self._buf[size] = value
            self._size = size + 1
            if size < window:
                self._older += value
                return False
            self._recent += value
            if size + 1 < cap:
                return False
        else:
            buf = self._buf
            head = self._head
            crossing_at = head + window
            if crossing_at >= cap:
                crossing_at -= cap
            crossing = buf[crossing_at]
            self._older += crossing - buf[head]
            self._recent += value - crossing
            buf[head] = value
            head += 1
            self._head = 0 if head == cap else head
        if self._recent - self._older > self._trip:
            self.reset()
            return True
        return False


class _KernelLedger:
    """Exact per-kernel error accumulators behind the report table."""

    __slots__ = ("samples", "sum_ips", "max_ips", "sum_power", "max_power")

    def __init__(self) -> None:
        self.samples = 0
        self.sum_ips = 0.0
        self.max_ips = 0.0
        self.sum_power = 0.0
        self.max_power = 0.0

    def add(self, e_ips: Optional[float], e_power: Optional[float]) -> None:
        self.samples += 1
        if e_ips is not None:
            self.sum_ips += e_ips
            if e_ips > self.max_ips:
                self.max_ips = e_ips
        if e_power is not None:
            self.sum_power += e_power
            if e_power > self.max_power:
                self.max_power = e_power

    def as_dict(self) -> Dict[str, Any]:
        n = self.samples
        return {
            "samples": n,
            "mean_ips": self.sum_ips / n if n else 0.0,
            "max_ips": self.max_ips,
            "mean_power": self.sum_power / n if n else 0.0,
            "max_power": self.max_power,
        }


class SessionHealth:
    """Streaming health state of one session (owned by the monitor)."""

    __slots__ = (
        "session", "decisions", "samples", "trusted_samples", "state",
        "ewma", "kernels", "transitions", "drift_events",
        "first_drift_decision", "clean_streak", "skip_streak", "events",
        # Per-quantity detector/window state, unrolled into slots —
        # the trusted-sample path touches all of them every decision.
        "ph_ips", "ph_power", "ms_ips", "ms_power", "win_ips", "win_power",
        # Bound metric handles (populated by the owning monitor so the
        # per-decision path never re-canonicalizes label sets).
        "m_decisions", "m_trusted", "m_untrusted", "m_state",
        "m_ewma_ips", "m_ewma_power", "m_error", "m_events",
    )

    def __init__(self, session: str, config: HealthConfig) -> None:
        self.session = session
        self.decisions = 0
        self.samples = 0
        self.trusted_samples = 0
        self.state = HealthState.HEALTHY
        self.ewma: Dict[str, Optional[float]] = dict.fromkeys(QUANTITIES)
        self.kernels: Dict[str, _KernelLedger] = {}
        self.transitions: List[Dict[str, Any]] = []
        self.drift_events = 0
        self.first_drift_decision: Optional[int] = None
        self.clean_streak = 0
        self.skip_streak = 0
        self.events: Dict[str, int] = {}
        self.ph_ips = PageHinkley(config.ph_delta, config.ph_threshold)
        self.ph_power = PageHinkley(config.ph_delta, config.ph_threshold)
        self.ms_ips = MeanShift(config.shift_window, config.shift_threshold)
        self.ms_power = MeanShift(config.shift_window, config.shift_threshold)
        self.win_ips: Deque[float] = deque(maxlen=config.window)
        self.win_power: Deque[float] = deque(maxlen=config.window)
        self.m_decisions: Any = None
        self.m_trusted: Any = None
        self.m_untrusted: Any = None
        self.m_state: Any = None
        self.m_ewma_ips: Any = None
        self.m_ewma_power: Any = None
        # kernel -> (bound ips histogram, bound power histogram)
        self.m_error: Dict[str, Tuple[Any, ...]] = {}
        self.m_events: Dict[str, Any] = {}

    def as_dict(self) -> Dict[str, Any]:
        """This session's health as a JSON-able dict."""
        window_stats: Dict[str, Any] = {}
        for quantity, values in (
            ("ips", self.win_ips), ("power", self.win_power)
        ):
            window_stats[quantity] = {
                "samples": len(values),
                "mean": sum(values) / len(values) if values else 0.0,
                "max": max(values) if values else 0.0,
            }
        return {
            "session": self.session,
            "state": self.state.name,
            "state_level": int(self.state),
            "decisions": self.decisions,
            "samples": self.samples,
            "trusted_samples": self.trusted_samples,
            "drift_events": self.drift_events,
            "first_drift_decision": self.first_drift_decision,
            "ewma": dict(self.ewma),
            "window": window_stats,
            "events": dict(self.events),
            "transitions": list(self.transitions),
            "kernels": {
                kernel: ledger.as_dict()
                for kernel, ledger in sorted(self.kernels.items())
            },
        }


def relative_errors(attrs: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """``|predicted - observed| / |observed|`` per quantity, if present."""
    out: Dict[str, float] = {}
    for quantity, predicted_key, observed_key in _QUANTITY_KEYS:
        predicted = attrs.get(predicted_key)
        observed = attrs.get(observed_key)
        if predicted is None or observed is None or not observed:
            continue
        out[quantity] = abs(predicted - observed) / abs(observed)
    return out or None


class HealthMonitor:
    """Error ledgers + drift detectors + health states over launch spans.

    Feed it finished launch-span payloads (the return value of
    ``Tracer.end_span``; ``SessionRuntime.process`` does this when the
    monitor is installed on its :class:`~repro.obs.Instrumentation`) or
    a recorded span stream via :meth:`observe_span` — live and offline
    ingestion are the same deterministic computation.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[Any] = None,
        tracer: Optional[Any] = None,
        config: Optional[HealthConfig] = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.config = config if config is not None else DEFAULT_HEALTH_CONFIG
        self.sessions: Dict[str, SessionHealth] = {}
        registry = self.registry
        # The registry-wide lock, held once per decision around the
        # bulk metric writes (see observe_launch).
        self._lock = getattr(registry, "lock", None) or threading.Lock()
        self._m_decisions = registry.counter(
            "repro_health_decisions_total",
            "Launch decisions seen by the health monitor",
        )
        self._m_samples = registry.counter(
            "repro_health_samples_total",
            "Prediction-error samples ingested "
            "(trusted=yes samples also feed the drift detectors)",
        )
        self._m_error = registry.histogram(
            "repro_health_rel_error",
            "Relative |predicted-observed|/observed error per decision",
            buckets=ERROR_BUCKETS,
        )
        self._m_ewma = registry.gauge(
            "repro_health_ewma",
            "EWMA of the relative prediction error over trusted samples",
        )
        self._m_state = registry.gauge(
            "repro_health_state",
            "Session health state (0 healthy, 1 degraded, 2 untrusted)",
        )
        self._m_transitions = registry.counter(
            "repro_health_transitions_total",
            "Health state-machine transitions by destination state",
        )
        self._m_drift = registry.counter(
            "repro_health_drift_events_total",
            "Model-drift events by detector",
        )
        self._m_events = registry.counter(
            "repro_health_events_total",
            "Health-relevant decision events "
            "(fail_safe/fallback/budget_skip/pattern_miss)",
        )

    # ----- ingestion ---------------------------------------------------------

    def observe_span(self, payload: Dict[str, Any]) -> None:
        """Ingest one finished span payload; non-launch spans are ignored."""
        if payload.get("name") != "launch":
            return
        attrs = payload.get("attributes")
        if not attrs:
            return
        self.observe_launch(attrs, at=payload.get("end_s") or 0.0)

    def observe_launch(self, attrs: Dict[str, Any], at: float = 0.0) -> None:
        """Ingest one launch span's attributes (read-only; RL005)."""
        get = attrs.get
        session = get("session")
        health = self.sessions.get(session)
        if health is None:
            # Slow path: canonicalize the id (handles missing/odd
            # values) and register the session.
            session = str(session or "")
            health = self.sessions.get(session)
            if health is None:
                health = self.sessions[session] = SessionHealth(
                    session, self.config
                )
                self._bind_metrics(health)
                health.m_state.set(0.0)
        health.decisions += 1

        mode = get("mode")
        fail_safe = get("fail_safe")
        fallback = get("fallback")
        if fail_safe:
            self._event(health, "fail_safe")
        if fallback:
            self._event(health, "fallback")
        if get("pattern_hit") is False:
            self._event(health, "pattern_miss")

        # Budget collapse: a run of exhausted-horizon fail-safe skips
        # means the manager has stopped optimizing entirely — drift by
        # outcome even when no prediction samples flow.  The streak
        # resets at application-run boundaries (index 0).
        if get("index") == 0:
            health.skip_streak = 0
        if mode == "skip" and fail_safe:
            self._event(health, "budget_skip")
            health.skip_streak += 1
            if health.skip_streak >= self.config.skip_cascade:
                health.skip_streak = 0
                self._drift(health, "budget-collapse", at)
        else:
            health.skip_streak = 0

        # Profiling-mode PPK predictions are one step behind by design;
        # their error says nothing about the frozen model.
        if mode == "ppk" and "pattern_hit" not in attrs:
            health.m_decisions.inc()
            return
        # Inline relative_errors(): the per-decision path skips the
        # dict round-trip (same math, exercised against the function
        # by the unit tests).
        observed = get("observed_ips")
        predicted = get("predicted_ips")
        e_ips = (
            abs(predicted - observed) / abs(observed)
            if observed and predicted is not None
            else None
        )
        observed = get("observed_power_w")
        predicted = get("predicted_power_w")
        e_power = (
            abs(predicted - observed) / abs(observed)
            if observed and predicted is not None
            else None
        )
        if e_ips is None and e_power is None:
            health.m_decisions.inc()
            return

        kernel = str(get("kernel") or "")
        ledger = health.kernels.get(kernel)
        if ledger is None:
            ledger = health.kernels[kernel] = _KernelLedger()
        ledger.add(e_ips, e_power)
        pair = health.m_error.get(kernel)
        if pair is None:
            pair = health.m_error[kernel] = tuple(
                self._m_error.labelled(
                    session=session, kernel=kernel, quantity=quantity
                )
                for quantity in QUANTITIES
            )
        health.samples += 1
        trusted = mode == "mpc" and not fail_safe and not fallback
        if trusted:
            health.trusted_samples += 1
            self._ingest_trusted(health, e_ips, e_power, at)
        # One lock acquisition covers the per-decision bulk writes —
        # every metric of a registry shares its lock.  The rare
        # event/drift/transition writes above use the plain locked
        # calls and therefore must stay outside this block.
        ewma = health.ewma
        with self._lock:
            health.m_decisions.inc_unlocked()
            (
                health.m_trusted if trusted else health.m_untrusted
            ).inc_unlocked()
            if e_ips is not None:
                pair[0].observe_unlocked(e_ips)
                if trusted:
                    health.m_ewma_ips.set_unlocked(ewma["ips"])
            if e_power is not None:
                pair[1].observe_unlocked(e_power)
                if trusted:
                    health.m_ewma_power.set_unlocked(ewma["power"])

    def _ingest_trusted(
        self,
        health: SessionHealth,
        e_ips: Optional[float],
        e_power: Optional[float],
        at: float,
    ) -> None:
        """EWMA + detectors + state thresholds for one trusted sample."""
        config = self.config
        # Detector state and EWMAs track every trusted sample, but the
        # alarms stay disarmed until the session has seen enough of
        # them: a distribution claim needs data, and one extreme
        # sample must not condemn a session.
        armed = health.trusted_samples >= config.warmup_samples
        alpha = config.ewma_alpha
        ewma = health.ewma
        worst = 0.0
        if e_ips is not None:
            previous = ewma["ips"]
            current = (
                e_ips
                if previous is None
                else previous + alpha * (e_ips - previous)
            )
            ewma["ips"] = current
            health.win_ips.append(e_ips)
            if current > worst:
                worst = current
            if health.ph_ips.update(e_ips) and armed:
                self._drift(health, "page-hinkley:ips", at)
            if health.ms_ips.update(e_ips) and armed:
                self._drift(health, "mean-shift:ips", at)
        if e_power is not None:
            previous = ewma["power"]
            current = (
                e_power
                if previous is None
                else previous + alpha * (e_power - previous)
            )
            ewma["power"] = current
            health.win_power.append(e_power)
            if current > worst:
                worst = current
            if health.ph_power.update(e_power) and armed:
                self._drift(health, "page-hinkley:power", at)
            if health.ms_power.update(e_power) and armed:
                self._drift(health, "mean-shift:power", at)

        # EWMA magnitude imposes a floor on the state; falling back
        # below the degraded threshold de-escalates one level per
        # `recovery_samples` consecutive clean samples (hysteresis).
        if worst > config.degraded_error:
            health.clean_streak = 0
            if not armed:
                pass
            elif (
                worst > config.untrusted_error
                and health.state < HealthState.UNTRUSTED
            ):
                self._transition(health, HealthState.UNTRUSTED, "ewma", at)
            elif health.state < HealthState.DEGRADED:
                self._transition(health, HealthState.DEGRADED, "ewma", at)
        else:
            health.clean_streak += 1
            if (
                health.state > HealthState.HEALTHY
                and health.clean_streak >= config.recovery_samples
            ):
                health.clean_streak = 0
                self._transition(
                    health, HealthState(health.state - 1), "recovery", at
                )

    # ----- events, drift, transitions ----------------------------------------

    def _bind_metrics(self, health: SessionHealth) -> None:
        """Pre-resolve this session's per-decision metric label sets."""
        session = health.session
        health.m_decisions = self._m_decisions.labelled(session=session)
        health.m_trusted = self._m_samples.labelled(
            session=session, trusted="yes"
        )
        health.m_untrusted = self._m_samples.labelled(
            session=session, trusted="no"
        )
        health.m_state = self._m_state.labelled(session=session)
        health.m_ewma_ips = self._m_ewma.labelled(
            session=session, quantity="ips"
        )
        health.m_ewma_power = self._m_ewma.labelled(
            session=session, quantity="power"
        )

    def _event(self, health: SessionHealth, kind: str) -> None:
        health.events[kind] = health.events.get(kind, 0) + 1
        bound = health.m_events.get(kind)
        if bound is None:
            bound = health.m_events[kind] = self._m_events.labelled(
                session=health.session, kind=kind
            )
        bound.inc()

    def _drift(self, health: SessionHealth, detector: str, at: float) -> None:
        health.drift_events += 1
        if health.first_drift_decision is None:
            health.first_drift_decision = health.decisions
        health.clean_streak = 0
        self._m_drift.inc(session=health.session, detector=detector)
        if health.state < HealthState.UNTRUSTED:
            self._transition(
                health,
                HealthState(health.state + 1),
                "drift",
                at,
                detector=detector,
            )

    def _transition(
        self,
        health: SessionHealth,
        to: HealthState,
        reason: str,
        at: float,
        detector: Optional[str] = None,
    ) -> None:
        from_state = health.state
        health.state = to
        record: Dict[str, Any] = {
            "decision": health.decisions,
            "from": from_state.name,
            "to": to.name,
            "reason": reason,
        }
        if detector is not None:
            record["detector"] = detector
        health.transitions.append(record)
        health.m_state.set(float(to))
        self._m_transitions.inc(session=health.session, to=to.name.lower())
        self.tracer.emit(
            {
                "schema": SPAN_SCHEMA,
                "name": "health",
                "start_s": at,
                "end_s": at,
                "attributes": {
                    "session": health.session,
                    "from_state": from_state.name.lower(),
                    "to_state": to.name.lower(),
                    "reason": reason,
                    "detector": detector or "",
                    "decision": health.decisions,
                    "drift_events": health.drift_events,
                },
            }
        )

    # ----- aggregation -------------------------------------------------------

    def _scoped(self, session: Optional[str]) -> Tuple[SessionHealth, ...]:
        if session is None or session == "*":
            return tuple(self.sessions.values())
        health = self.sessions.get(session)
        return (health,) if health is not None else ()

    def drift_events(self, session: Optional[str] = None) -> int:
        """Drift events for one session, or the whole-trace total."""
        return sum(h.drift_events for h in self._scoped(session))

    def first_drift_decision(self, session: Optional[str] = None) -> float:
        """Session-local decision ordinal of the first drift event.

        ``inf`` when no drift fired; scoped to one session or, for
        ``None``/``"*"``, the minimum across sessions (the earliest any
        session drifted, in its own decision count).
        """
        ordinals = [
            h.first_drift_decision
            for h in self._scoped(session)
            if h.first_drift_decision is not None
        ]
        return float(min(ordinals)) if ordinals else float("inf")

    def final_state(self, session: Optional[str] = None) -> int:
        """Health level of a session (worst across sessions for ``"*"``)."""
        states = [int(h.state) for h in self._scoped(session)]
        return max(states) if states else 0

    def transitions_count(self, session: Optional[str] = None) -> int:
        """State-machine transitions for a session or the whole trace."""
        return sum(len(h.transitions) for h in self._scoped(session))

    def report(self) -> Dict[str, Any]:
        """The full health report as a JSON-able dict."""
        return {
            "schema": HEALTH_SCHEMA,
            "config": {
                "window": self.config.window,
                "ewma_alpha": self.config.ewma_alpha,
                "degraded_error": self.config.degraded_error,
                "untrusted_error": self.config.untrusted_error,
                "recovery_samples": self.config.recovery_samples,
                "warmup_samples": self.config.warmup_samples,
                "ph_delta": self.config.ph_delta,
                "ph_threshold": self.config.ph_threshold,
                "shift_window": self.config.shift_window,
                "shift_threshold": self.config.shift_threshold,
                "skip_cascade": self.config.skip_cascade,
            },
            "sessions": {
                name: health.as_dict()
                for name, health in sorted(self.sessions.items())
            },
        }


class NullHealthMonitor:
    """The do-nothing monitor installed on NOOP instrumentation."""

    __slots__ = ()

    enabled = False

    def observe_span(self, payload: Dict[str, Any]) -> None:
        pass

    def observe_launch(self, attrs: Dict[str, Any], at: float = 0.0) -> None:
        pass

    def drift_events(self, session: Optional[str] = None) -> int:
        return 0

    def first_drift_decision(self, session: Optional[str] = None) -> float:
        return float("inf")

    def final_state(self, session: Optional[str] = None) -> int:
        return 0

    def transitions_count(self, session: Optional[str] = None) -> int:
        return 0

    def report(self) -> Dict[str, Any]:
        return {"schema": HEALTH_SCHEMA, "config": {}, "sessions": {}}


#: The shared disabled monitor; safe to use from any thread.
NULL_HEALTH = NullHealthMonitor()


def _format_ewma(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def format_health_report(report: Dict[str, Any]) -> str:
    """Render a :meth:`HealthMonitor.report` as an aligned text table."""
    sessions = report.get("sessions", {})
    lines = [f"== model health: {len(sessions)} session(s) =="]
    if not sessions:
        lines.append("(no launch decisions observed)")
        return "\n".join(lines)
    header = (
        f"{'session':16s} {'state':10s} {'decisions':>9s} {'samples':>8s} "
        f"{'trusted':>8s} {'drift':>6s} {'first':>6s} "
        f"{'ewma(ips)':>10s} {'ewma(pow)':>10s}"
    )
    lines.append(header)
    for name, health in sessions.items():
        first = health.get("first_drift_decision")
        ewma = health.get("ewma", {})
        lines.append(
            f"{name:16s} {health['state']:10s} {health['decisions']:>9d} "
            f"{health['samples']:>8d} {health['trusted_samples']:>8d} "
            f"{health['drift_events']:>6d} "
            f"{'-' if first is None else first:>6} "
            f"{_format_ewma(ewma.get('ips')):>10s} "
            f"{_format_ewma(ewma.get('power')):>10s}"
        )
    for name, health in sessions.items():
        kernels = health.get("kernels", {})
        transitions = health.get("transitions", [])
        if not kernels and not transitions:
            continue
        lines.append(f"-- {name} --")
        if kernels:
            lines.append(
                f"  {'kernel':20s} {'samples':>8s} "
                f"{'ips mean/max':>14s} {'power mean/max':>15s}"
            )
            for kernel, ledger in kernels.items():
                lines.append(
                    f"  {kernel:20s} {ledger['samples']:>8d} "
                    f"{ledger['mean_ips']:>6.3f}/{ledger['max_ips']:<6.3f} "
                    f"{ledger['mean_power']:>7.3f}/{ledger['max_power']:<6.3f}"
                )
        for transition in transitions:
            detector = transition.get("detector")
            suffix = f" ({detector})" if detector else ""
            lines.append(
                f"  decision {transition['decision']}: "
                f"{transition['from']} -> {transition['to']} "
                f"[{transition['reason']}]{suffix}"
            )
    return "\n".join(lines)
