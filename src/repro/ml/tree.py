"""CART regression trees, implemented from scratch on numpy.

The building block of the paper's Random Forest performance/power model
(Breiman 2001).  Trees greedily split on the (feature, threshold) pair
with the largest sum-of-squared-error reduction, using sorted prefix
sums for an exact O(n log n) per-feature split search, and store their
nodes in flat arrays so batch prediction is a sequence of vectorized
gathers instead of per-sample recursion.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["DecisionTreeRegressor"]


class DecisionTreeRegressor:
    """A binary regression tree minimizing squared error.

    Args:
        max_depth: Maximum tree depth (root is depth 0).
        min_samples_leaf: Minimum training samples in any leaf.
        min_samples_split: Minimum samples required to attempt a split.
        max_features: Number of features considered per split; ``None``
            uses all features (random subsetting is what makes a forest
            "random").
        rng: Random generator used to draw feature subsets.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        # RL002: the fallback generator must be explicitly seeded, or
        # identically-configured trees would differ run to run.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Flat node arrays, filled by fit():
        self._feature: Optional[np.ndarray] = None  # -1 marks a leaf
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None

    # ----- training ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree to a training set.

        Args:
            X: Feature matrix of shape (n_samples, n_features).
            y: Target vector of shape (n_samples,).

        Returns:
            ``self``, for chaining.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        features: list = []
        thresholds: list = []
        lefts: list = []
        rights: list = []
        values: list = []

        def new_node() -> int:
            features.append(-1)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(0.0)
            return len(features) - 1

        # Iterative depth-first build with an explicit stack.
        root = new_node()
        stack = [(root, np.arange(X.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            y_node = y[idx]
            values[node] = float(y_node.mean())
            if (
                depth >= self.max_depth
                or idx.size < self.min_samples_split
                or np.all(y_node == y_node[0])
            ):
                continue
            split = self._best_split(X, y, idx)
            if split is None:
                continue
            feat, thresh, left_mask = split
            features[node] = feat
            thresholds[node] = thresh
            left_child = new_node()
            right_child = new_node()
            lefts[node] = left_child
            rights[node] = right_child
            stack.append((left_child, idx[left_mask], depth + 1))
            stack.append((right_child, idx[~left_mask], depth + 1))

        self._feature = np.asarray(features, dtype=np.int64)
        self._threshold = np.asarray(thresholds, dtype=float)
        self._left = np.asarray(lefts, dtype=np.int64)
        self._right = np.asarray(rights, dtype=np.int64)
        self._value = np.asarray(values, dtype=float)
        return self

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> Optional[Tuple[int, float, np.ndarray]]:
        """Exact best (feature, threshold) split over a feature subset.

        Returns ``(feature, threshold, left_mask)`` or ``None`` when no
        split satisfies the leaf-size constraints or reduces the SSE.
        """
        best_gain = 1e-12
        best: Optional[Tuple[int, float, np.ndarray]] = None
        n = idx.size
        y_sub = y[idx]
        total_sum = y_sub.sum()
        total_sq = total_sum * total_sum / n

        for feat in self._candidate_features(X.shape[1]):
            x = X[idx, feat]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            ys = y_sub[order]
            prefix = np.cumsum(ys)

            # Valid split positions: between distinct x values, with at
            # least min_samples_leaf on each side.
            k = np.arange(1, n)
            distinct = xs[1:] > xs[:-1]
            sized = (k >= self.min_samples_leaf) & (n - k >= self.min_samples_leaf)
            valid = distinct & sized
            if not np.any(valid):
                continue

            left_sum = prefix[:-1]
            right_sum = total_sum - left_sum
            score = left_sum**2 / k + right_sum**2 / (n - k)
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            gain = score[pos] - total_sq
            if gain > best_gain:
                threshold = 0.5 * (xs[pos] + xs[pos + 1])
                left_mask = x <= threshold
                # Guard against degenerate numerics on near-equal values.
                n_left = int(left_mask.sum())
                if self.min_samples_leaf <= n_left <= n - self.min_samples_leaf:
                    best_gain = gain
                    best = (int(feat), float(threshold), left_mask)
        return best

    # ----- prediction --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._feature is not None

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        if self._feature is None:
            return 0
        return int(self._feature.size)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._feature is None:
            return 0

        depths = np.zeros(self.node_count, dtype=np.int64)
        for node in range(self.node_count):
            if self._feature[node] >= 0:
                depths[self._left[node]] = depths[node] + 1
                depths[self._right[node]] = depths[node] + 1
        return int(depths.max())

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a batch of samples.

        Args:
            X: Feature matrix of shape (n_samples, n_features).

        Returns:
            Predictions of shape (n_samples,).
        """
        if self._feature is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[nodes] >= 0
        # Each iteration pushes every still-internal sample one level
        # down; terminates after at most max_depth iterations.
        while np.any(active):
            current = nodes[active]
            feats = self._feature[current]
            go_left = X[active, feats] <= self._threshold[current]
            nodes[active] = np.where(
                go_left, self._left[current], self._right[current]
            )
            active = self._feature[nodes] >= 0
        return self._value[nodes]
