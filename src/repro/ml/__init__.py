"""Machine-learning substrate: trees, forests, and kernel predictors.

Implements the paper's Random Forest performance/power model from
scratch (:mod:`~repro.ml.tree`, :mod:`~repro.ml.forest`), the offline
characterization pipeline (:mod:`~repro.ml.dataset`), the predictor
facades policies consume (:mod:`~repro.ml.predictors`), and the
synthetic-error models of the Figure-13 study (:mod:`~repro.ml.errors`).
"""

from repro.ml.dataset import (
    FEATURE_NAMES,
    CharacterizationDataset,
    build_dataset,
    build_features,
)
from repro.ml.errors import SyntheticErrorPredictor, half_normal_sigma
from repro.ml.forest import RandomForestRegressor, mean_absolute_percentage_error
from repro.ml.predictors import (
    CpuPowerModel,
    KernelEstimate,
    OraclePredictor,
    PerfPowerPredictor,
    RandomForestPredictor,
    evaluate_predictor,
    train_predictor,
)
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.validation import (
    CrossValidationResult,
    cross_validate_predictor,
    group_kfold,
)

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "mean_absolute_percentage_error",
    "FEATURE_NAMES",
    "CharacterizationDataset",
    "build_dataset",
    "build_features",
    "KernelEstimate",
    "CpuPowerModel",
    "PerfPowerPredictor",
    "RandomForestPredictor",
    "OraclePredictor",
    "train_predictor",
    "evaluate_predictor",
    "SyntheticErrorPredictor",
    "half_normal_sigma",
    "CrossValidationResult",
    "cross_validate_predictor",
    "group_kfold",
]
