"""Characterization datasets for offline model training.

The paper trains its Random Forest on kernel-level GPU performance
counters, execution times, and GPU power numbers captured "for several
benchmark suites executed under different GPU/NB configurations".  This
module performs that offline characterization on the modelled APU: it
runs a kernel population over the configuration space, synthesizes each
kernel's Table-III counters, and assembles (features, targets) matrices
with realistic measurement noise.

Feature layout (:func:`build_features`): the eight Table-III counters
followed by seven hardware-configuration features.  Execution time is
modelled in log space (kernel times span orders of magnitude and the
paper's accuracy metric, MAPE, is relative); GPU power is modelled
linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.workloads.counters import COUNTER_NAMES, CounterSynthesizer, CounterVector
from repro.workloads.kernel import KernelSpec

__all__ = ["FEATURE_NAMES", "build_features", "CharacterizationDataset", "build_dataset"]

#: Names of all model features, in column order.
FEATURE_NAMES = tuple(COUNTER_NAMES) + (
    "cpu_freq_ghz",
    "cpu_voltage",
    "nb_freq_ghz",
    "memory_bw_gbps",
    "gpu_freq_ghz",
    "rail_voltage",
    "cu_count",
)


def build_features(counters: CounterVector, config: HardwareConfig) -> np.ndarray:
    """Assemble the model feature vector for (kernel counters, config).

    Args:
        counters: The kernel's Table-III performance counters.
        config: Candidate hardware configuration.

    Returns:
        Float vector of length ``len(FEATURE_NAMES)``.
    """
    return np.concatenate(
        [
            counters.as_array(),
            [
                config.cpu_state.freq_ghz,
                config.cpu_state.voltage,
                config.nb_state.freq_ghz,
                config.memory_bandwidth_gbps,
                config.gpu_state.freq_ghz,
                config.rail_voltage,
                float(config.cu),
            ],
        ]
    )


@dataclass
class CharacterizationDataset:
    """An offline characterization run, ready for model fitting.

    Attributes:
        X: Feature matrix, shape (n_samples, n_features).
        log_time: ``log`` of measured kernel times (seconds).
        gpu_power: Measured GPU-rail power (watts).
        kernel_keys: Kernel identity per row (for group-aware splits).
    """

    X: np.ndarray
    log_time: np.ndarray
    gpu_power: np.ndarray
    kernel_keys: List[str]

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def time_s(self) -> np.ndarray:
        """Measured kernel times in seconds (exp of the stored target)."""
        return np.exp(self.log_time)


def build_dataset(
    kernels: Sequence[KernelSpec],
    apu: Optional[APUModel] = None,
    space: Optional[ConfigSpace] = None,
    synthesizer: Optional[CounterSynthesizer] = None,
    time_noise: float = 0.03,
    power_noise: float = 0.08,
    seed: int = 99,
) -> CharacterizationDataset:
    """Characterize a kernel population over a configuration space.

    Args:
        kernels: Kernels to run (typically the synthetic training
            population, *not* the evaluation benchmarks).
        apu: Ground-truth hardware model.
        space: Configurations to sweep; defaults to the full 336-point
            space the paper characterizes.
        synthesizer: Counter synthesizer; counters are sampled once per
            kernel, as a profiler would.
        time_noise: Relative standard deviation of multiplicative noise
            on measured kernel time.
        power_noise: Relative standard deviation of multiplicative noise
            on measured power (1 ms sampling of a bursty rail is noisy).
        seed: Seed for the measurement-noise stream.

    Returns:
        The assembled dataset.
    """
    if not kernels:
        raise ValueError("need at least one kernel")
    apu = apu if apu is not None else APUModel()
    space = space if space is not None else ConfigSpace()
    synthesizer = synthesizer if synthesizer is not None else CounterSynthesizer()
    # Independent noise streams: changing the power-noise level must not
    # perturb the time measurements, and vice versa.
    time_rng = np.random.default_rng(seed)
    power_rng = np.random.default_rng(seed + 104729)

    configs = space.all_configs()
    rows: List[np.ndarray] = []
    log_times: List[float] = []
    powers: List[float] = []
    keys: List[str] = []

    for spec in kernels:
        counters = synthesizer.observe(spec)
        for config in configs:
            measurement = apu.execute(spec, config)
            time_factor = max(0.5, 1.0 + time_rng.normal(0.0, time_noise))
            power_factor = max(0.5, 1.0 + power_rng.normal(0.0, power_noise))
            rows.append(build_features(counters, config))
            log_times.append(np.log(measurement.time_s * time_factor))
            powers.append(measurement.gpu_power_w * power_factor)
            keys.append(spec.key)

    return CharacterizationDataset(
        X=np.vstack(rows),
        log_time=np.asarray(log_times),
        gpu_power=np.asarray(powers),
        kernel_keys=keys,
    )
