"""Performance/power predictors used by the runtime policies.

Three predictors implement the same interface
(:class:`PerfPowerPredictor`):

* :class:`RandomForestPredictor` — the paper's offline-trained Random
  Forest for kernel time and GPU power, plus a normalized V²f CPU-power
  model ("the CPU usually busy waits while the kernel is executing").
* :class:`OraclePredictor` — perfect prediction against the ground-truth
  APU model, used by the limit studies (Figure 4, Figure 12).
* :class:`~repro.ml.errors.SyntheticErrorPredictor` — an oracle
  perturbed by half-normal errors of configurable mean, used to study
  prediction-accuracy sensitivity (Figure 13).

Estimates are (time, GPU power, CPU power); energy follows.
"""

from __future__ import annotations

import abc
import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.hardware.dvfs import CPU_PSTATES
from repro.hardware.table import ConfigTable
from repro.ml.dataset import build_dataset
from repro.ml.forest import RandomForestRegressor, mean_absolute_percentage_error
from repro.workloads.counters import CounterSynthesizer, CounterVector
from repro.workloads.generator import training_population
from repro.workloads.kernel import KernelSpec

__all__ = [
    "KernelEstimate",
    "EstimateBatch",
    "CpuPowerModel",
    "PerfPowerPredictor",
    "RandomForestPredictor",
    "OraclePredictor",
    "train_predictor",
    "evaluate_predictor",
]


@dataclass(frozen=True)
class KernelEstimate:
    """Predicted behaviour of one kernel launch at one configuration.

    Attributes:
        time_s: Predicted kernel execution time.
        gpu_power_w: Predicted GPU-rail power (GPU + NB).
        cpu_power_w: Predicted CPU-plane power (busy-wait).
    """

    time_s: float
    gpu_power_w: float
    cpu_power_w: float

    @property
    def energy_j(self) -> float:
        """Predicted total chip energy of the launch."""
        return (self.gpu_power_w + self.cpu_power_w) * self.time_s

    @property
    def gpu_energy_j(self) -> float:
        """Predicted GPU-rail energy of the launch."""
        return self.gpu_power_w * self.time_s


class EstimateBatch:
    """Struct-of-arrays estimates for one kernel over many configurations.

    The columnar twin of a ``List[KernelEstimate]``: three float64
    columns plus the vectorized energy column, row ``i`` float-for-float
    equal to the scalar estimate of the same (counters, config) query.

    Attributes:
        times_s: Predicted kernel execution times.
        gpu_power_w: Predicted GPU-rail powers.
        cpu_power_w: Predicted CPU-plane powers.
        energy_j: Predicted total chip energies, ``(gpu + cpu) * time``.
    """

    __slots__ = ("times_s", "gpu_power_w", "cpu_power_w", "energy_j")

    def __init__(self, times_s, gpu_power_w, cpu_power_w) -> None:
        self.times_s = np.asarray(times_s, dtype=float)
        self.gpu_power_w = np.asarray(gpu_power_w, dtype=float)
        self.cpu_power_w = np.asarray(cpu_power_w, dtype=float)
        self.energy_j = (self.gpu_power_w + self.cpu_power_w) * self.times_s

    def __len__(self) -> int:
        return self.times_s.shape[0]

    def estimate(self, i: int) -> KernelEstimate:
        """The scalar :class:`KernelEstimate` of one row."""
        return KernelEstimate(
            time_s=float(self.times_s[i]),
            gpu_power_w=float(self.gpu_power_w[i]),
            cpu_power_w=float(self.cpu_power_w[i]),
        )

    def to_estimates(self) -> List[KernelEstimate]:
        """Materialize all rows as scalar estimates."""
        return [
            KernelEstimate(time_s=t, gpu_power_w=g, cpu_power_w=c)
            for t, g, c in zip(
                self.times_s.tolist(),
                self.gpu_power_w.tolist(),
                self.cpu_power_w.tolist(),
            )
        ]

    @classmethod
    def from_estimates(cls, estimates: Sequence[KernelEstimate]) -> "EstimateBatch":
        """Columnar view of scalar estimates (adapter for stub predictors)."""
        return cls(
            times_s=[e.time_s for e in estimates],
            gpu_power_w=[e.gpu_power_w for e in estimates],
            cpu_power_w=[e.cpu_power_w for e in estimates],
        )

    @classmethod
    def empty(cls) -> "EstimateBatch":
        """A zero-row batch."""
        return cls(np.empty(0), np.empty(0), np.empty(0))


class CpuPowerModel:
    """Normalized V²f CPU power model (Section IV-A3 of the paper).

    Busy-wait CPU power is well captured by ``a · V²f + b``; the two
    coefficients are calibrated offline from per-P-state measurements.

    Args:
        coef_w_per_v2ghz: Dynamic coefficient ``a``.
        static_w: Static term ``b``.
    """

    def __init__(self, coef_w_per_v2ghz: float, static_w: float) -> None:
        self.coef_w_per_v2ghz = coef_w_per_v2ghz
        self.static_w = static_w

    @classmethod
    def calibrate(cls, apu: APUModel) -> "CpuPowerModel":
        """Least-squares fit of (a, b) to busy-wait power measurements.

        One measurement per CPU P-state at a fixed GPU configuration —
        the kind of one-time calibration a vendor ships with the part.
        """
        v2f = []
        watts = []
        base = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        for name, state in CPU_PSTATES.items():
            config = base.replace(cpu=name)
            v2f.append(state.voltage**2 * state.freq_ghz)
            watts.append(apu.power.cpu_power(config, busy_cores=1))
        A = np.vstack([np.asarray(v2f), np.ones(len(v2f))]).T
        coef, static = np.linalg.lstsq(A, np.asarray(watts), rcond=None)[0]
        return cls(float(coef), float(static))

    def predict(self, config: HardwareConfig) -> float:
        """Busy-wait CPU power at a configuration, in watts."""
        state = config.cpu_state
        return self.coef_w_per_v2ghz * state.voltage**2 * state.freq_ghz + self.static_w


class PerfPowerPredictor(abc.ABC):
    """Interface of the performance and power predictor (Figure 6)."""

    @abc.abstractmethod
    def estimate(self, counters: CounterVector,
                 config: HardwareConfig) -> KernelEstimate:
        """Predict a kernel's behaviour at a candidate configuration.

        Args:
            counters: The kernel's Table-III counters (from the pattern
                extractor's store).
            config: Candidate hardware configuration.

        Returns:
            Predicted time and component powers.
        """

    def estimate_batch(self, counters: CounterVector,
                       configs: Sequence[HardwareConfig]) -> List[KernelEstimate]:
        """Estimates for one kernel over many candidate configurations.

        The default loops over :meth:`estimate`; predictors with a
        vectorizable model (the Random Forest) override it so the
        optimizer's probe sweeps cost one forest traversal per batch.
        """
        return [self.estimate(counters, config) for config in configs]

    def estimate_matrix(self, counters: CounterVector, table: ConfigTable,
                        indices: Optional[np.ndarray] = None) -> EstimateBatch:
        """Columnar estimates for one kernel over table rows.

        This is the decide hot path's native interface: the optimizer
        hands a :class:`~repro.hardware.table.ConfigTable` plus flat row
        indices and gets struct-of-arrays estimates back.  The default
        loops over the scalar :meth:`estimate` (so wrapper predictors
        like :class:`~repro.ml.errors.SyntheticErrorPredictor` stay
        correct for free); the Random Forest and the oracle override it
        with genuinely vectorized models.  Overrides must stay
        float-for-float identical to the scalar path — the golden-result
        suite depends on that.

        Args:
            counters: The kernel's Table-III counters.
            table: Columnar configuration set.
            indices: Optional flat row indices; all rows when ``None``.
        """
        if indices is None:
            configs: Sequence[HardwareConfig] = table.configs
        else:
            configs = [table.config_at(int(i)) for i in indices]
        return EstimateBatch.from_estimates(
            [self.estimate(counters, config) for config in configs]
        )

    def estimate_matrix_many(
        self,
        counters_list: Sequence[CounterVector],
        table: ConfigTable,
        indices: Optional[np.ndarray] = None,
    ) -> List[EstimateBatch]:
        """Columnar estimates for *many* kernels over the same table rows.

        The multi-session hot path: ``SessionManager.step_batch``
        collects the counter vectors of every ready session and sweeps
        them in one call.  The default loops over
        :meth:`estimate_matrix` (one batch per counter vector — always
        correct); the Random Forest overrides it to stack all kernels
        into a single ``(sessions × configs)`` feature matrix and one
        flattened-forest descent.  Overrides must return batches
        float-for-float identical to per-kernel :meth:`estimate_matrix`
        calls — the differential step_batch suite depends on that.

        Args:
            counters_list: One Table-III counter vector per kernel.
            table: Columnar configuration set, shared by all kernels.
            indices: Optional flat row indices; all rows when ``None``.

        Returns:
            One :class:`EstimateBatch` per input counter vector, in
            order.
        """
        return [
            self.estimate_matrix(counters, table, indices)
            for counters in counters_list
        ]


class RandomForestPredictor(PerfPowerPredictor):
    """The paper's Random Forest kernel time / GPU power model.

    Args:
        time_forest: Forest trained on log kernel time.
        power_forest: Forest trained on GPU-rail power.
        cpu_model: Calibrated normalized-V²f CPU power model.
    """

    def __init__(self, time_forest: RandomForestRegressor,
                 power_forest: RandomForestRegressor,
                 cpu_model: CpuPowerModel) -> None:
        self.time_forest = time_forest
        self.power_forest = power_forest
        self.cpu_model = cpu_model

    def estimate(self, counters: CounterVector,
                 config: HardwareConfig) -> KernelEstimate:
        """Scalar estimate; thin wrapper over :meth:`estimate_matrix`."""
        table = ConfigTable.from_configs((config,))
        return self.estimate_matrix(counters, table).estimate(0)

    def estimate_batch(self, counters: CounterVector,
                       configs: Sequence[HardwareConfig]) -> List[KernelEstimate]:
        """Vectorized estimates; thin wrapper over :meth:`estimate_matrix`."""
        if not configs:
            return []
        table = ConfigTable.from_configs(configs)
        return self.estimate_matrix(counters, table).to_estimates()

    def estimate_matrix(self, counters: CounterVector, table: ConfigTable,
                        indices: Optional[np.ndarray] = None) -> EstimateBatch:
        """Native columnar path: one forest traversal per batch.

        The feature matrix is assembled by broadcasting the kernel's
        counter row next to the table's precomputed hardware feature
        block — the same floats :func:`~repro.ml.dataset.build_features`
        concatenates per config, without the per-row Python work.  CPU
        power is a gather from the table's memoized per-P-state column.
        """
        block = table.feature_block if indices is None else table.feature_block[indices]
        n = block.shape[0]
        if n == 0:
            return EstimateBatch.empty()
        counter_row = counters.as_array()
        X = np.empty((n, counter_row.shape[0] + block.shape[1]))
        X[:, : counter_row.shape[0]] = counter_row
        X[:, counter_row.shape[0]:] = block
        times = np.exp(self.time_forest.predict(X))
        powers = np.maximum(0.1, self.power_forest.predict(X))
        cpu = table.cpu_power_column(self.cpu_model)
        if indices is not None:
            cpu = cpu[indices]
        return EstimateBatch(times_s=times, gpu_power_w=powers, cpu_power_w=cpu)

    def estimate_matrix_many(
        self,
        counters_list: Sequence[CounterVector],
        table: ConfigTable,
        indices: Optional[np.ndarray] = None,
    ) -> List[EstimateBatch]:
        """Native multi-kernel path: one stacked descent for all sessions.

        All kernels' feature rows are stacked into one
        ``(kernels · configs, features)`` matrix, so each forest is
        descended once for the whole batch.  Tree traversal is
        row-independent and the per-batch slices are views of the same
        prediction arrays, so every returned batch is float-for-float
        identical to a per-kernel :meth:`estimate_matrix` call.
        """
        if not counters_list:
            return []
        block = table.feature_block if indices is None else table.feature_block[indices]
        n = block.shape[0]
        if n == 0:
            return [EstimateBatch.empty() for _ in counters_list]
        m = len(counters_list)
        width = counters_list[0].as_array().shape[0]
        X = np.empty((m * n, width + block.shape[1]))
        for i, counters in enumerate(counters_list):
            span = slice(i * n, (i + 1) * n)
            X[span, :width] = counters.as_array()
            X[span, width:] = block
        times = np.exp(self.time_forest.predict(X))
        powers = np.maximum(0.1, self.power_forest.predict(X))
        cpu = table.cpu_power_column(self.cpu_model)
        if indices is not None:
            cpu = cpu[indices]
        return [
            EstimateBatch(
                times_s=times[i * n:(i + 1) * n],
                gpu_power_w=powers[i * n:(i + 1) * n],
                cpu_power_w=cpu,
            )
            for i in range(m)
        ]


class OraclePredictor(PerfPowerPredictor):
    """Perfect predictor: looks the answer up in the ground-truth model.

    The oracle maps a counter vector back to the kernel it belongs to by
    nearest relative distance over the known kernel population's nominal
    counters — counters identify kernels, which is exactly the
    assumption the paper's pattern extractor makes.

    Args:
        apu: Ground-truth hardware model.
        kernels: The kernels that may be queried (e.g. an application's
            unique kernels).
        synthesizer: Counter synthesizer used for the nominal
            (noise-free) reference counters.
    """

    def __init__(self, apu: APUModel, kernels: Sequence[KernelSpec],
                 synthesizer: Optional[CounterSynthesizer] = None) -> None:
        if not kernels:
            raise ValueError("oracle needs a kernel population")
        self.apu = apu
        synthesizer = synthesizer if synthesizer is not None else CounterSynthesizer(noise=0.0)
        self._specs: List[KernelSpec] = list(kernels)
        self._nominal = np.vstack(
            [synthesizer.nominal(spec).as_array() for spec in self._specs]
        )

    def resolve(self, counters: CounterVector) -> KernelSpec:
        """The known kernel whose nominal counters best match."""
        observed = counters.as_array()
        scale = np.maximum(np.abs(self._nominal), 1e-9)
        distance = np.sum(((self._nominal - observed) / scale) ** 2, axis=1)
        return self._specs[int(np.argmin(distance))]

    def estimate(self, counters: CounterVector,
                 config: HardwareConfig) -> KernelEstimate:
        spec = self.resolve(counters)
        measurement = self.apu.execute(spec, config)
        return KernelEstimate(
            time_s=measurement.time_s,
            gpu_power_w=measurement.gpu_power_w,
            cpu_power_w=measurement.cpu_power_w,
        )

    def estimate_batch(self, counters: CounterVector,
                       configs: Sequence[HardwareConfig]) -> List[KernelEstimate]:
        """Batch estimates resolving the kernel once per batch.

        The base-class default would re-run nearest-counter resolution
        per config; the answer cannot change within one batch, so this
        resolves once and evaluates the ground-truth model columnwise.
        """
        if not configs:
            return []
        spec = self.resolve(counters)
        matrix = self.apu.execute_matrix(spec, ConfigTable.from_configs(configs))
        return EstimateBatch(
            times_s=matrix.times_s,
            gpu_power_w=matrix.gpu_power_w,
            cpu_power_w=matrix.cpu_power_w,
        ).to_estimates()

    def estimate_matrix(self, counters: CounterVector, table: ConfigTable,
                        indices: Optional[np.ndarray] = None) -> EstimateBatch:
        """Native columnar path: one ground-truth matrix evaluation."""
        spec = self.resolve(counters)
        matrix = self.apu.execute_matrix(spec, table, indices)
        return EstimateBatch(
            times_s=matrix.times_s,
            gpu_power_w=matrix.gpu_power_w,
            cpu_power_w=matrix.cpu_power_w,
        )


# ----- training -------------------------------------------------------------


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"rf_predictor_{key}.pkl")


def train_predictor(
    apu: Optional[APUModel] = None,
    kernels: Optional[Sequence[KernelSpec]] = None,
    space: Optional[ConfigSpace] = None,
    n_estimators: int = 16,
    max_depth: int = 16,
    max_features: Union[int, float, str] = 0.6,
    seed: int = 5,
    cache_dir: Optional[str] = None,
) -> RandomForestPredictor:
    """Offline-train the Random Forest performance/power predictor.

    Args:
        apu: Ground-truth hardware model to characterize on.
        kernels: Training kernel population; defaults to the synthetic
            population (the evaluation benchmarks stay out-of-sample).
        space: Configurations to characterize; defaults to all 336.
        n_estimators: Trees per forest.
        max_depth: Depth limit per tree.
        max_features: Features per split (see
            :class:`~repro.ml.forest.RandomForestRegressor`).
        seed: Seed for dataset noise and forest randomness.
        cache_dir: If given, pickle the trained predictor there and
            reuse it on identical parameters (training takes tens of
            seconds; experiments share one model).

    Returns:
        The trained predictor.
    """
    apu = apu if apu is not None else APUModel()
    kernels = list(kernels) if kernels is not None else training_population(192)
    space = space if space is not None else ConfigSpace()

    cache_file = None
    if cache_dir:
        digest = hashlib.sha256(
            repr(
                (
                    sorted(k.key for k in kernels),
                    len(space),
                    n_estimators,
                    max_depth,
                    max_features,
                    seed,
                    "v6",
                )
            ).encode()
        ).hexdigest()[:16]
        cache_file = _cache_path(cache_dir, digest)
        if os.path.exists(cache_file):
            with open(cache_file, "rb") as handle:
                return pickle.load(handle)

    dataset = build_dataset(kernels, apu=apu, space=space, seed=seed)
    time_forest = RandomForestRegressor(
        n_estimators=n_estimators, max_depth=max_depth,
        max_features=max_features, seed=seed,
    ).fit(dataset.X, dataset.log_time)
    power_forest = RandomForestRegressor(
        n_estimators=n_estimators, max_depth=max_depth,
        max_features=max_features, seed=seed + 1,
    ).fit(dataset.X, dataset.gpu_power)
    predictor = RandomForestPredictor(
        time_forest, power_forest, CpuPowerModel.calibrate(apu)
    )

    if cache_file:
        os.makedirs(cache_dir, exist_ok=True)
        with open(cache_file, "wb") as handle:
            pickle.dump(predictor, handle)
    return predictor


def evaluate_predictor(
    predictor: RandomForestPredictor,
    kernels: Sequence[KernelSpec],
    apu: Optional[APUModel] = None,
    space: Optional[ConfigSpace] = None,
) -> Tuple[float, float]:
    """Out-of-sample MAPE of a predictor on a kernel set.

    Args:
        predictor: The predictor to evaluate.
        kernels: Evaluation kernels (e.g. the Table-IV benchmarks').
        apu: Ground truth to compare against.
        space: Configurations to sweep.

    Returns:
        ``(time_mape_pct, power_mape_pct)`` — the paper reports 25% and
        12% respectively for its 15 benchmarks.
    """
    apu = apu if apu is not None else APUModel()
    space = space if space is not None else ConfigSpace()
    synthesizer = CounterSynthesizer(noise=0.0)

    true_t, pred_t, true_p, pred_p = [], [], [], []
    for spec in kernels:
        counters = synthesizer.nominal(spec)
        configs = space.all_configs()
        estimates = predictor.estimate_batch(counters, configs)
        for config, estimate in zip(configs, estimates):
            measurement = apu.execute(spec, config)
            true_t.append(measurement.time_s)
            pred_t.append(estimate.time_s)
            true_p.append(measurement.gpu_power_w)
            pred_p.append(estimate.gpu_power_w)

    return (
        mean_absolute_percentage_error(np.asarray(true_t), np.asarray(pred_t)),
        mean_absolute_percentage_error(np.asarray(true_p), np.asarray(pred_p)),
    )
