"""Random Forest regression (Breiman 2001), from scratch.

The paper selects Random Forest for its performance/power model because
"it gave the highest accuracy among other learning algorithms".  This
implementation follows the classic recipe: each tree is fit on a
bootstrap resample of the training set, considers a random feature
subset at every split, and the forest predicts the mean of its trees.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

import numpy as np

from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "mean_absolute_percentage_error"]


class RandomForestRegressor:
    """Bootstrap-aggregated ensemble of CART regression trees.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth limit for each tree.
        min_samples_leaf: Leaf-size limit for each tree.
        max_features: Features per split: an int, a float fraction, or
            ``"sqrt"`` (default) for ``round(sqrt(n_features))``.
        bootstrap: Whether to resample the training set per tree.
        seed: Seed for bootstrap and feature-subset draws.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Union[int, float, str] = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees: List[DecisionTreeRegressor] = []
        self._target_min: float = -math.inf
        self._target_max: float = math.inf

    def _resolve_max_features(self, n_features: int) -> int:
        if isinstance(self.max_features, str):
            if self.max_features != "sqrt":
                raise ValueError(f"unknown max_features: {self.max_features!r}")
            return max(1, round(math.sqrt(n_features)))
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("fractional max_features must be in (0, 1]")
            return max(1, round(self.max_features * n_features))
        if self.max_features < 1:
            raise ValueError("max_features must be at least 1")
        return min(n_features, self.max_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble.

        Args:
            X: Feature matrix of shape (n_samples, n_features).
            y: Target vector of shape (n_samples,).

        Returns:
            ``self``, for chaining.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(d)

        self.trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample])
            else:
                tree.fit(X, y)
            self.trees.append(tree)

        self._target_min = float(y.min())
        self._target_max = float(y.max())
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self.trees)

    @property
    def target_range(self) -> tuple:
        """(min, max) of the training targets; predictions stay inside."""
        return self._target_min, self._target_max

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across all trees for a batch of samples."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        acc = np.zeros(X.shape[0], dtype=float)
        for tree in self.trees:
            acc += tree.predict(X)
        return acc / len(self.trees)

    def predict_one(self, x: np.ndarray) -> float:
        """Prediction for a single sample vector."""
        return float(self.predict(x.reshape(1, -1))[0])


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAPE in percent, the accuracy metric the paper reports.

    Args:
        y_true: Ground-truth targets; must be non-zero.
        y_pred: Predictions.

    Returns:
        ``100 * mean(|y_pred - y_true| / |y_true|)``.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if np.any(y_true == 0):
        raise ValueError("MAPE is undefined for zero targets")
    return float(100.0 * np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))
