"""Random Forest regression (Breiman 2001), from scratch.

The paper selects Random Forest for its performance/power model because
"it gave the highest accuracy among other learning algorithms".  This
implementation follows the classic recipe: each tree is fit on a
bootstrap resample of the training set, considers a random feature
subset at every split, and the forest predicts the mean of its trees.

Prediction runs on a *flattened* forest: every fitted tree's node
arrays are concatenated into one contiguous block (child pointers
shifted by per-tree offsets) so a whole batch descends all trees in a
single vectorized loop instead of one Python call per tree.  The flat
arrays are derived state — rebuilt at fit/unpickle time and memoized in
a module-level WeakKeyDictionary — so pickles and structural
fingerprints of the forest are byte-identical to the per-tree layout.
"""

from __future__ import annotations

import math
import sys
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "mean_absolute_percentage_error"]


@dataclass(frozen=True)
class _FlatForest:
    """One forest's trees concatenated into contiguous node arrays.

    ``feature[i] == -1`` marks node ``i`` as a leaf; internal nodes
    carry global (offset-shifted) ``left``/``right`` child indices, so
    a descent never needs to know which tree a lane belongs to.
    """

    feature: np.ndarray  # int64, -1 marks a leaf
    threshold: np.ndarray  # float64 split thresholds
    left: np.ndarray  # int64 global child indices, -1 for leaves
    right: np.ndarray  # int64 global child indices, -1 for leaves
    value: np.ndarray  # float64 node means (leaf predictions)
    roots: np.ndarray  # int64 per-tree root offsets
    trees: Tuple[DecisionTreeRegressor, ...]
    node_arrays: Tuple[np.ndarray, ...]

    def matches(self, trees: Sequence[DecisionTreeRegressor]) -> bool:
        """Whether this flattening is still current for ``trees``.

        Identity of both the tree objects and their node arrays is
        checked: replacing a tree *or* refitting one in place (which
        swaps its ``_feature`` array) invalidates the flattening.
        """
        return len(trees) == len(self.trees) and all(
            tree is kept and tree._feature is nodes
            for tree, kept, nodes in zip(trees, self.trees, self.node_arrays)
        )


def _flatten(trees: Sequence[DecisionTreeRegressor]) -> _FlatForest:
    """Concatenate fitted trees into one contiguous node block."""
    offsets: List[int] = []
    total = 0
    for tree in trees:
        if tree._feature is None:
            raise RuntimeError("tree is not fitted")
        offsets.append(total)
        total += tree._feature.size
    feature = np.empty(total, dtype=np.int64)
    threshold = np.empty(total, dtype=float)
    left = np.empty(total, dtype=np.int64)
    right = np.empty(total, dtype=np.int64)
    value = np.empty(total, dtype=float)
    for tree, offset in zip(trees, offsets):
        assert tree._feature is not None  # checked above
        span = slice(offset, offset + tree._feature.size)
        feature[span] = tree._feature
        threshold[span] = tree._threshold
        value[span] = tree._value
        # Child pointers shift by the tree's node offset; -1 leaf
        # markers must stay -1.
        left[span] = np.where(tree._left >= 0, tree._left + offset, -1)
        right[span] = np.where(tree._right >= 0, tree._right + offset, -1)
    return _FlatForest(
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        value=value,
        roots=np.asarray(offsets, dtype=np.int64),
        trees=tuple(trees),
        node_arrays=tuple(t._feature for t in trees),  # type: ignore[misc]
    )


#: Derived flat arrays per forest.  A module-level weak-key memo — never
#: an instance attribute — so flattening neither changes pickle bytes
#: nor perturbs structural fingerprints (same discipline as
#: ``repro.hardware.table._CPU_POWER_COLUMNS``).  Readers must
#: revalidate hits against the live tree tuple (``matches``) before
#: use — a refit rebinds ``forest.trees`` without touching the memo.
# repro-lint: memo-guard=matches
_FLAT_FORESTS: "weakref.WeakKeyDictionary[RandomForestRegressor, _FlatForest]" = (
    weakref.WeakKeyDictionary()
)


def _flat_forest(forest: "RandomForestRegressor") -> _FlatForest:
    """The current flattening of ``forest``, (re)built when stale."""
    flat = _FLAT_FORESTS.get(forest)
    if flat is None or not flat.matches(forest.trees):
        flat = _flatten(forest.trees)
        _FLAT_FORESTS[forest] = flat
    return flat


class RandomForestRegressor:
    """Bootstrap-aggregated ensemble of CART regression trees.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth limit for each tree.
        min_samples_leaf: Leaf-size limit for each tree.
        max_features: Features per split: an int, a float fraction, or
            ``"sqrt"`` (default) for ``round(sqrt(n_features))``.
        bootstrap: Whether to resample the training set per tree.
        seed: Seed for bootstrap and feature-subset draws.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Union[int, float, str] = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees: List[DecisionTreeRegressor] = []
        self._target_min: float = -math.inf
        self._target_max: float = math.inf

    def _resolve_max_features(self, n_features: int) -> int:
        if isinstance(self.max_features, str):
            if self.max_features != "sqrt":
                raise ValueError(f"unknown max_features: {self.max_features!r}")
            return max(1, round(math.sqrt(n_features)))
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("fractional max_features must be in (0, 1]")
            return max(1, round(self.max_features * n_features))
        if self.max_features < 1:
            raise ValueError("max_features must be at least 1")
        return min(n_features, self.max_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble.

        Args:
            X: Feature matrix of shape (n_samples, n_features).
            y: Target vector of shape (n_samples,).

        Returns:
            ``self``, for chaining.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(d)

        self.trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample])
            else:
                tree.fit(X, y)
            self.trees.append(tree)

        self._target_min = float(y.min())
        self._target_max = float(y.max())
        # Prime the flattened node arrays so the first prediction after
        # a fit lands straight on the vectorized descent.
        _flat_forest(self)
        return self

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Intern string keys exactly as pickle's default load_build
        # does, so adding this hook leaves re-pickle bytes untouched.
        for key, value in state.items():
            if type(key) is str:
                key = sys.intern(key)
            self.__dict__[key] = value
        # Rebuild the flattened arrays eagerly at unpickle time:
        # deserialized forests (engine workers, the on-disk predictor
        # cache) go straight onto the hot path.  Legacy or hand-built
        # pickles with unfitted trees fall back to the lazy rebuild in
        # predict().
        trees = self.__dict__.get("trees") or []
        if trees and all(t._feature is not None for t in trees):
            _flat_forest(self)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self.trees)

    @property
    def target_range(self) -> tuple:
        """(min, max) of the training targets; predictions stay inside."""
        return self._target_min, self._target_max

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across all trees for a batch of samples.

        One iterative vectorized descent walks every (tree, sample)
        lane of the flattened forest simultaneously; per-tree values
        are then accumulated in tree order (sequential ``+=``, exactly
        the float semantics of the historical per-tree loop) and
        averaged.
        """
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        flat = _flat_forest(self)
        n = X.shape[0]
        n_trees = len(self.trees)
        # Lane i*n + j descends tree i with sample j.
        nodes = np.repeat(flat.roots, n)
        cols = np.tile(np.arange(n), n_trees)
        active = flat.feature[nodes] >= 0
        # Each iteration pushes every still-internal lane one level
        # down; terminates after at most max(tree depth) iterations.
        while np.any(active):
            current = nodes[active]
            feats = flat.feature[current]
            go_left = X[cols[active], feats] <= flat.threshold[current]
            nodes[active] = np.where(
                go_left, flat.left[current], flat.right[current]
            )
            active = flat.feature[nodes] >= 0
        per_tree = flat.value[nodes].reshape(n_trees, n)
        # Sequential accumulation in tree order: float-for-float
        # identical to `for tree: acc += tree.predict(X)` (np.sum's
        # pairwise reduction would drift in the last ulp).
        acc = np.zeros(n, dtype=float)
        for row in per_tree:
            acc += row
        return acc / n_trees

    def predict_one(self, x: np.ndarray) -> float:
        """Prediction for a single sample vector."""
        return float(self.predict(x.reshape(1, -1))[0])


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAPE in percent, the accuracy metric the paper reports.

    Args:
        y_true: Ground-truth targets; must be non-zero.
        y_pred: Predictions.

    Returns:
        ``100 * mean(|y_pred - y_true| / |y_true|)``.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if np.any(y_true == 0):
        raise ValueError("MAPE is undefined for zero targets")
    return float(100.0 * np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))
