"""Synthetic-error predictors for the accuracy-sensitivity study.

Figure 13 of the paper compares its Random Forest against hypothetical
predictors with the accuracy of recently published models:
``Err_15%_10%`` (15% performance / 10% power error, Wu et al.),
``Err_5%`` (Paul et al.), and a perfect ``Err_0%``.  The paper models
these by drawing errors from a half-normal distribution whose absolute
mean equals the target average error.

:class:`SyntheticErrorPredictor` wraps the oracle and perturbs its
answers that way.  Errors are *deterministic* per (kernel, configuration,
quantity): a real model's error is a bias, not fresh noise per query, so
the optimizer must see consistent values when it revisits a point.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.ml.predictors import KernelEstimate, PerfPowerPredictor
from repro.workloads.counters import CounterVector

__all__ = ["SyntheticErrorPredictor", "half_normal_sigma"]


def half_normal_sigma(mean_abs_error: float) -> float:
    """Half-normal scale with the requested absolute mean.

    For ``X ~ HalfNormal(sigma)``, ``E[X] = sigma * sqrt(2/pi)``; so a
    target mean error ``m`` needs ``sigma = m * sqrt(pi/2)``.
    """
    if mean_abs_error < 0:
        raise ValueError("mean error must be non-negative")
    return mean_abs_error * math.sqrt(math.pi / 2.0)


class SyntheticErrorPredictor(PerfPowerPredictor):
    """Wraps a predictor with half-normal multiplicative errors.

    Args:
        inner: The underlying (usually oracle) predictor.
        time_error: Target mean absolute relative error on time, e.g.
            ``0.15`` for the paper's Err_15%_10% model.
        power_error: Target mean absolute relative error on GPU power.
        seed: Base seed; errors are reproducible functions of
            (seed, kernel counters, configuration).
    """

    def __init__(self, inner: PerfPowerPredictor, time_error: float,
                 power_error: float, seed: int = 0) -> None:
        self.inner = inner
        self.time_sigma = half_normal_sigma(time_error)
        self.power_sigma = half_normal_sigma(power_error)
        self.seed = seed

    def _factors(self, counters: CounterVector, config: HardwareConfig) -> tuple:
        """Deterministic (time, power) error factors for a query point."""
        signature = counters.signature()
        key = repr((self.seed, signature, config.cpu, config.nb, config.gpu, config.cu))
        digest = hashlib.sha256(key.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        time_err = abs(rng.normal(0.0, self.time_sigma)) if self.time_sigma else 0.0
        power_err = abs(rng.normal(0.0, self.power_sigma)) if self.power_sigma else 0.0
        time_sign = 1.0 if rng.random() < 0.5 else -1.0
        power_sign = 1.0 if rng.random() < 0.5 else -1.0
        return (
            max(0.05, 1.0 + time_sign * time_err),
            max(0.05, 1.0 + power_sign * power_err),
        )

    def estimate(self, counters: CounterVector,
                 config: HardwareConfig) -> KernelEstimate:
        base = self.inner.estimate(counters, config)
        time_factor, power_factor = self._factors(counters, config)
        return KernelEstimate(
            time_s=base.time_s * time_factor,
            gpu_power_w=base.gpu_power_w * power_factor,
            cpu_power_w=base.cpu_power_w,
        )
