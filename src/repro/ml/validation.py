"""Model-validation utilities: group-aware cross-validation.

The paper's accuracy numbers are *out-of-sample in the kernel
dimension*: the Random Forest is trained on one kernel corpus and
evaluated on the 15 benchmarks' kernels.  Plain row-wise splits would
leak — every kernel appears at 336 configurations, so a random split
puts the same kernel in both train and test.  This module provides the
group k-fold (grouped by kernel identity) needed to measure honest
generalization, plus a convenience cross-validation of the full
time/power predictor pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.dataset import build_dataset
from repro.ml.forest import RandomForestRegressor, mean_absolute_percentage_error
from repro.workloads.kernel import KernelSpec

__all__ = ["group_kfold", "CrossValidationResult", "cross_validate_predictor"]


def group_kfold(groups: Sequence[str], n_splits: int,
                seed: int = 0) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) with whole groups held out.

    Args:
        groups: Group label per row (kernel identity).
        n_splits: Number of folds; each unique group lands in exactly
            one test fold.
        seed: Shuffling seed for group-to-fold assignment.

    Yields:
        Index arrays; every row appears in exactly one test fold and
        no group straddles the train/test boundary of any fold.
    """
    groups = np.asarray(groups)
    unique = np.unique(groups)
    if n_splits < 2:
        raise ValueError("need at least two folds")
    if n_splits > unique.size:
        raise ValueError(
            f"cannot make {n_splits} folds from {unique.size} groups"
        )
    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(unique)
    folds = np.array_split(shuffled, n_splits)
    for fold in folds:
        mask = np.isin(groups, fold)
        yield np.where(~mask)[0], np.where(mask)[0]


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold MAPEs of the time/power predictor.

    Attributes:
        time_mape_pct: Out-of-group time MAPE per fold.
        power_mape_pct: Out-of-group GPU-power MAPE per fold.
    """

    time_mape_pct: Tuple[float, ...]
    power_mape_pct: Tuple[float, ...]

    @property
    def mean_time_mape_pct(self) -> float:
        """Mean time MAPE across folds."""
        return float(np.mean(self.time_mape_pct))

    @property
    def mean_power_mape_pct(self) -> float:
        """Mean power MAPE across folds."""
        return float(np.mean(self.power_mape_pct))


def cross_validate_predictor(
    kernels: Sequence[KernelSpec],
    apu: Optional[APUModel] = None,
    space: Optional[ConfigSpace] = None,
    n_splits: int = 4,
    n_estimators: int = 8,
    max_depth: int = 12,
    seed: int = 0,
) -> CrossValidationResult:
    """Group k-fold cross-validation of the forest pipeline.

    Args:
        kernels: Kernel population to characterize and validate on.
        apu: Ground-truth hardware model.
        space: Configuration space to sweep.
        n_splits: Folds (grouped by kernel).
        n_estimators: Trees per fold (kept small: k folds retrain k
            times).
        max_depth: Tree depth per fold.
        seed: Seed for splits and forests.

    Returns:
        Per-fold out-of-group MAPEs for time and power.
    """
    apu = apu if apu is not None else APUModel()
    space = space if space is not None else ConfigSpace()
    dataset = build_dataset(kernels, apu=apu, space=space, seed=seed)

    time_mapes: List[float] = []
    power_mapes: List[float] = []
    for fold, (train, test) in enumerate(
        group_kfold(dataset.kernel_keys, n_splits, seed=seed)
    ):
        time_forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth,
            max_features=0.6, seed=seed + fold,
        ).fit(dataset.X[train], dataset.log_time[train])
        power_forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth,
            max_features=0.6, seed=seed + fold + 1000,
        ).fit(dataset.X[train], dataset.gpu_power[train])

        true_time = np.exp(dataset.log_time[test])
        pred_time = np.exp(time_forest.predict(dataset.X[test]))
        time_mapes.append(mean_absolute_percentage_error(true_time, pred_time))
        power_mapes.append(
            mean_absolute_percentage_error(
                dataset.gpu_power[test], power_forest.predict(dataset.X[test])
            )
        )

    return CrossValidationResult(
        time_mape_pct=tuple(time_mapes), power_mape_pct=tuple(power_mapes)
    )
