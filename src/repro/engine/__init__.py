"""repro.engine — parallel cached execution layer for the experiments.

Public surface::

    from repro.engine import ExperimentEngine, RunRequest

Submodules are imported lazily (PEP 562) so that low-level modules —
notably :mod:`repro.experiments.common`, which the engine's serializer
imports — can themselves import :mod:`repro.engine.variants` without
creating an import cycle through this package initializer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "EngineError",
    "EngineStats",
    "EngineWorkerError",
    "ExperimentEngine",
    "ResultCache",
    "CacheStats",
    "RunRequest",
    "SessionStore",
    "VARIANTS",
    "canonical_requests",
    "produced_keys",
    "requests_for",
]

_EXPORTS = {
    "CODE_VERSION": ("repro.engine.fingerprint", "CODE_VERSION"),
    "DEFAULT_CACHE_DIR": ("repro.engine.core", "DEFAULT_CACHE_DIR"),
    "EngineError": ("repro.engine.core", "EngineError"),
    "EngineStats": ("repro.engine.core", "EngineStats"),
    "EngineWorkerError": ("repro.engine.core", "EngineWorkerError"),
    "ExperimentEngine": ("repro.engine.core", "ExperimentEngine"),
    "ResultCache": ("repro.engine.cache", "ResultCache"),
    "CacheStats": ("repro.engine.cache", "CacheStats"),
    "RunRequest": ("repro.engine.variants", "RunRequest"),
    "SessionStore": ("repro.engine.sessions", "SessionStore"),
    "VARIANTS": ("repro.engine.variants", "VARIANTS"),
    "canonical_requests": ("repro.engine.core", "canonical_requests"),
    "produced_keys": ("repro.engine.variants", "produced_keys"),
    "requests_for": ("repro.engine.matrix", "requests_for"),
}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cache import CacheStats, ResultCache
    from repro.engine.core import (
        DEFAULT_CACHE_DIR,
        EngineError,
        EngineStats,
        EngineWorkerError,
        ExperimentEngine,
        canonical_requests,
    )
    from repro.engine.fingerprint import CODE_VERSION
    from repro.engine.matrix import requests_for
    from repro.engine.sessions import SessionStore
    from repro.engine.variants import VARIANTS, RunRequest, produced_keys


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.engine' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(__all__)
