"""Session persistence in the engine's content-addressed cache.

A :class:`SessionStore` maps session ids onto
:class:`~repro.engine.cache.ResultCache` entries so that a
:class:`~repro.runtime.manager.SessionManager` can ``persist`` a live
session's snapshot and a different worker (or a later process) can
``resume`` it.  Snapshots are plain JSON dicts (see
:meth:`repro.runtime.session.SessionRuntime.snapshot`), so they share
the cache's atomic-write and corrupt-entry-as-miss guarantees with the
experiment results that live alongside them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.engine.cache import ResultCache
from repro.engine.fingerprint import fingerprint

__all__ = ["SessionStore"]


class SessionStore:
    """Keyed session-snapshot storage on top of a :class:`ResultCache`.

    Args:
        cache: The backing cache (typically the engine's own, so
            snapshots live next to cached experiment results).
    """

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache

    def key_for(self, session_id: str) -> str:
        """Cache key a session's snapshot is stored under."""
        if not session_id:
            raise ValueError("session_id must be non-empty")
        return fingerprint({"kind": "session-snapshot", "session": session_id})

    def save(self, session_id: str, payload: Dict[str, Any]) -> str:
        """Persist a session snapshot; returns the cache key used."""
        key = self.key_for(session_id)
        self.cache.store(
            key, payload,
            summary={"kind": "session-snapshot", "session": session_id},
        )
        return key

    def load(self, session_id: str) -> Optional[Dict[str, Any]]:
        """The persisted snapshot for a session, or ``None`` on miss."""
        return self.cache.load(self.key_for(session_id))
