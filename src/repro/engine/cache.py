"""Content-addressed on-disk cache for experiment run results.

Layout: one JSON file per cached run under ``<cache_dir>/engine/``,
named by the SHA-256 key of everything that determines the result (see
:mod:`repro.engine.fingerprint`).  Entries are self-describing — they
carry a schema version and a human-readable summary of the key material
— and are written atomically (temp file + rename) so a crashed or
concurrent writer can never leave a half-written entry that poisons
later runs.  Unreadable or truncated entries are treated as misses and
counted, never raised.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["CacheStats", "ResultCache"]

#: Bump when the envelope layout (not the run payload) changes.
ENVELOPE_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/timing counters for one cache instance.

    Attributes:
        hits: Entries found and successfully decoded.
        misses: Lookups that found no entry.
        corrupt: Lookups that found an undecodable entry (counted as
            misses too).
        stores: Entries written.
        load_s: Wall-clock time spent reading entries.
        store_s: Wall-clock time spent writing entries.
        sources: How many cache instances' counters this object holds
            (grows on :meth:`merge`, so aggregate stats shipped back
            from engine workers keep their provenance).
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0
    load_s: float = 0.0
    store_s: float = 0.0
    sources: int = 1

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.corrupt += other.corrupt
        self.stores += other.stores
        self.load_s += other.load_s
        self.store_s += other.store_s
        self.sources += other.sources

    def format(self) -> str:
        """One-line summary for reports."""
        total = self.hits + self.misses
        rate = 100.0 * self.hits / total if total else 0.0
        merged = (
            f", merged from {self.sources} caches" if self.sources > 1 else ""
        )
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({rate:.0f}% hit rate, {self.corrupt} corrupt, "
            f"{self.stores} stored; load {self.load_s:.2f}s, "
            f"store {self.store_s:.2f}s{merged})"
        )


@dataclass
class ResultCache:
    """Filesystem-backed JSON store addressed by content hash.

    Args:
        cache_dir: Root cache directory (entries live in an ``engine/``
            subdirectory so they coexist with the Random Forest pickle
            cache).
        enabled: When ``False`` every lookup misses and stores are
            dropped — the ``--no-cache`` behaviour.
    """

    cache_dir: str
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    @property
    def root(self) -> str:
        """Directory holding the cache entries."""
        return os.path.join(self.cache_dir, "engine")

    def path_for(self, key: str) -> str:
        """Entry path for a fingerprint key."""
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key``, or ``None`` on miss.

        Corrupt, truncated, or schema-mismatched entries are misses —
        the engine recomputes and overwrites them.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        start = time.perf_counter()
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if envelope.get("envelope") != ENVELOPE_VERSION:
                raise ValueError("envelope version mismatch")
            payload = envelope["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        finally:
            self.stats.load_s += time.perf_counter() - start
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, Any],
              summary: Optional[Dict[str, Any]] = None) -> None:
        """Atomically write ``payload`` under ``key``.

        Args:
            key: Fingerprint key.
            payload: JSON-able content.
            summary: Optional human-readable key material recorded next
                to the payload for debugging (never read back).
        """
        if not self.enabled:
            return
        start = time.perf_counter()
        os.makedirs(self.root, exist_ok=True)
        envelope = {
            "envelope": ENVELOPE_VERSION,
            "key": key,
            "summary": summary or {},
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        finally:
            self.stats.store_s += time.perf_counter() - start
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed
