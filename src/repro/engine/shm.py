"""POSIX shared-memory transport for read-only numpy blocks.

The parallel engine ships the ConfigTable's static hardware feature
block — a pure function of the config lattice, identical in every
worker — to pool workers through one named shared-memory segment
instead of a per-worker pickled copy.  The lifecycle is strictly
owner-driven:

* The **parent** calls :func:`export_block` before starting the pool
  and gets a :class:`SharedBlockExport`; its picklable ``handle``
  travels to workers inside the pool-initializer spec.  After the pool
  exits, the parent calls :meth:`SharedBlockExport.close`, which
  unlinks the segment — the only unlink in the system.
* Each **worker** calls :func:`attach_block` in its initializer and
  gets a read-only ndarray view over the mapping.  Workers never
  unlink; their mappings die with the process.  Attachments are cached
  per handle name so repeated attaches in one process share a mapping.

Segment names are deterministic (``repro-shm-<pid>-<counter>``) so a
leak check is one directory listing: after an engine run, no
``/dev/shm/repro-shm-*`` entries may remain (asserted in CI).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "SharedBlockExport",
    "SharedBlockHandle",
    "attach_block",
    "detach_all",
    "export_block",
]

#: Every segment this module creates is named ``<SHM_PREFIX><pid>-<n>``.
SHM_PREFIX = "repro-shm-"

_COUNTER = itertools.count()

#: Per-process attachment cache: handle name -> (segment, array view).
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


@dataclass(frozen=True)
class SharedBlockHandle:
    """Picklable reference to an exported block.

    Attributes:
        name: The shared-memory segment name.
        shape: Array shape of the block.
        dtype: ``numpy.dtype`` string (e.g. ``"float64"``).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedBlockExport:
    """Owner side of one exported block; unlinks on :meth:`close`."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: SharedBlockHandle) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.handle = handle

    def close(self) -> None:
        """Unlink and unmap the segment (idempotent)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        shm.close()


# repro-lint: acquires=close
def export_block(block: np.ndarray) -> SharedBlockExport:
    """Copy an array into a fresh named segment owned by the caller.

    The caller must :meth:`SharedBlockExport.close` the export once all
    consumers have attached-or-died, or the segment leaks until reboot.
    """
    array = np.ascontiguousarray(block)
    name = f"{SHM_PREFIX}{os.getpid()}-{next(_COUNTER)}"
    while True:
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=array.nbytes, name=name
            )
            break
        except FileExistsError:
            # A stale segment from a crashed earlier run with the same
            # pid; the counter is process-local, so step past it.
            name = f"{SHM_PREFIX}{os.getpid()}-{next(_COUNTER)}"
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        handle = SharedBlockHandle(
            name=shm.name, shape=array.shape, dtype=str(array.dtype)
        )
    except BaseException:
        # The segment exists but ownership never reached the returned
        # export object; without this unlink it would outlive the
        # process in /dev/shm (RL010).
        shm.unlink()
        shm.close()
        raise
    return SharedBlockExport(shm, handle)


# repro-lint: shm-attach
def attach_block(handle: SharedBlockHandle) -> np.ndarray:
    """Map an exported block read-only in this process.

    The returned array aliases the shared mapping directly (zero-copy);
    it stays valid until :func:`detach_all` or process exit.  Attaching
    never registers with the multiprocessing resource tracker — the
    exporting parent owns the unlink, and a tracker-driven cleanup from
    a worker would tear the segment down under the other workers.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    # Attach WITHOUT resource-tracker registration.  Registering would
    # either (spawned worker, private tracker) unlink the segment under
    # the other workers when this process exits, or (forked worker,
    # shared tracker) require an unregister that also erases the
    # parent's own registration, making the owner's unlink a tracked
    # KeyError.  Suppressing the register during attach avoids both;
    # the exporting parent remains the one tracked owner.
    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None  # type: ignore[assignment]
    try:
        shm = shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                      buffer=shm.buf)
    view.setflags(write=False)
    _ATTACHED[handle.name] = (shm, view)
    return view


def detach_all() -> None:
    """Unmap every cached attachment in this process (no unlinks).

    A mapping whose view is still referenced elsewhere (e.g. adopted by
    a live ConfigTable) cannot be unmapped and is skipped; it unmaps at
    process exit instead.
    """
    while _ATTACHED:
        _, (shm, _view) = _ATTACHED.popitem()
        del _view
        try:
            shm.close()
        except BufferError:
            pass
