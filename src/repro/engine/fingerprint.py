"""Content fingerprinting for the experiment engine's result cache.

A cache entry's key must change whenever anything that could change the
run's outcome changes: the application's kernel specs, the policy
variant and its parameters, the hardware/model configuration (DVFS
tables, APU calibration, overhead model), the predictor, or the engine's
serialization schema.  :func:`describe` reduces an arbitrary object
graph of dataclasses, numpy arrays, and plain containers to a canonical
JSON-able structure; :func:`fingerprint` hashes it.

The description is *structural*: two objects with equal field values
produce the same fingerprint regardless of identity, which is what lets
a worker process, a later session, or CI reuse a cached result.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any

import numpy as np

__all__ = ["CODE_VERSION", "describe", "canonical_json", "fingerprint"]

#: Bump to invalidate every cached result (simulation-affecting code
#: changes that are not visible in the described object graphs).
CODE_VERSION = "engine-v1"


def describe(obj: Any) -> Any:
    """Reduce an object graph to a canonical JSON-able structure.

    Supported nodes: ``None``/bool/int/float/str, enums, numpy scalars
    and arrays (arrays are content-hashed, not embedded), dataclasses,
    dicts with string-convertible keys, sequences, sets, and generic
    objects via their ``__dict__`` (tagged with the class's qualified
    name so renaming a class invalidates its entries).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; normalize -0.0 for stability.
        return obj + 0.0
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.value]
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return ["ndarray", str(obj.dtype), list(obj.shape), digest]
    if isinstance(obj, np.generic):
        return obj.item()
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dataclass",
            type(obj).__name__,
            {f.name: describe(getattr(obj, f.name)) for f in fields(obj)},
        ]
    if isinstance(obj, dict):
        return ["dict", sorted((str(k), describe(v)) for k, v in obj.items())]
    if isinstance(obj, (list, tuple)):
        return ["seq", [describe(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(describe(v), sort_keys=True) for v in obj)]
    if hasattr(obj, "__dict__"):
        cls = type(obj)
        state = {k: describe(v) for k, v in sorted(vars(obj).items())}
        return ["obj", f"{cls.__module__}.{cls.__qualname__}", state]
    raise TypeError(f"cannot fingerprint object of type {type(obj)!r}")


def canonical_json(payload: Any) -> str:
    """Serialize a described payload to canonical JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of an object graph's canonical description."""
    return hashlib.sha256(canonical_json(describe(payload)).encode()).hexdigest()
