"""The parallel, cached experiment engine.

:class:`ExperimentEngine` is the execution layer between the experiment
modules and the simulator.  It does two things:

* **Content-addressed caching.**  Every policy run is keyed by a
  SHA-256 fingerprint of everything that determines it — the app's
  kernel specs, the DVFS tables, the simulator/APU calibration, the
  variant and its parameters, the predictor, and the engine's code
  version — and persisted as JSON under ``<cache_dir>/engine/``.  A key
  hit returns a run that is bit-identical to recomputing it.
* **Parallel fan-out.**  :meth:`prefetch` partitions a request matrix
  into cache hits and misses and computes the misses on a
  ``ProcessPoolExecutor`` (``jobs=1`` keeps today's serial in-process
  behaviour).  Workers receive the context's simulator and trained
  predictor once (at pool start) and execute requests through the same
  :mod:`~repro.engine.variants` registry as the serial path.

Failure semantics: a worker exception is re-raised in the parent as
:class:`EngineWorkerError` carrying the worker's original formatted
traceback; corrupt or truncated cache entries are silent misses.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.fingerprint import CODE_VERSION, describe, fingerprint
from repro.engine.serialize import run_result_from_dict, run_result_to_dict
from repro.engine.variants import VARIANTS, RunKey, RunRequest, produced_keys
from repro.obs import Instrumentation, NOOP, or_noop, publish_cache_stats
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sim.trace import RunResult

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EngineError",
    "EngineWorkerError",
    "EngineStats",
    "ExperimentEngine",
]

#: Default on-disk cache root, shared with the Random Forest cache.
DEFAULT_CACHE_DIR = ".cache"


class EngineError(RuntimeError):
    """Base class for engine failures."""


class EngineWorkerError(EngineError):
    """A worker process failed; carries the original remote traceback.

    Attributes:
        request: The request that failed.
        remote_traceback: The worker's formatted traceback text.
    """

    def __init__(self, request: RunRequest, remote_traceback: str) -> None:
        self.request = request
        self.remote_traceback = remote_traceback
        super().__init__(
            f"engine worker failed computing {request.describe()}\n"
            f"--- original worker traceback ---\n{remote_traceback}"
        )


@dataclass
class EngineStats:
    """Aggregate statistics of one engine's lifetime.

    Attributes:
        jobs: Configured worker count.
        requests: Requests examined by prefetch/fetch.
        computed: Requests actually simulated (cache misses).
        parallel_computed: Subset of ``computed`` done by pool workers.
        compute_s: Wall-clock time spent computing misses.
        cache: Hit/miss counters of the result cache.
    """

    jobs: int = 1
    requests: int = 0
    computed: int = 0
    parallel_computed: int = 0
    compute_s: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)

    def format(self) -> str:
        """Multi-line human-readable summary for reports."""
        return (
            f"engine: {self.jobs} job(s); {self.requests} requests, "
            f"{self.computed} computed ({self.parallel_computed} in "
            f"workers) in {self.compute_s:.2f}s\n{self.cache.format()}"
        )


class ExperimentEngine:
    """Parallel execution layer with a content-hash result cache.

    Args:
        jobs: Worker processes for :meth:`prefetch`; ``1`` computes
            serially in-process (exact legacy behaviour).
        cache_dir: Root directory of the on-disk result cache.
        use_cache: When ``False`` (the ``--no-cache`` flag) the engine
            neither reads nor writes cache entries.
        obs: Optional instrumentation.  With a live tracer, every
            computed request's launch spans are delivered to it — on the
            parallel path the workers capture spans per request and the
            parent re-emits them in request order, so a trace is
            byte-identical across job counts (for request matrices where
            baselines precede their dependents, e.g. the canonical
            matrix).  Worker registry snapshots are merged back with
            provenance.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir=cache_dir, enabled=use_cache)
        self.stats = EngineStats(jobs=jobs, cache=self.cache.stats)
        self.obs = or_noop(obs)

    # ----- fingerprinting -------------------------------------------------------

    def _base_payload(self, ctx: Any, request: RunRequest) -> Any:
        """Described key material shared by a request's produced runs."""
        from repro.hardware import dvfs

        spec = VARIANTS[request.variant]
        payload: Dict[str, Any] = {
            "code": CODE_VERSION,
            "benchmark": request.benchmark,
            "app": ctx.app(request.benchmark),
            "sim": ctx.sim,
            "space": {
                "cpu": ctx.space.cpu_axis,
                "nb": ctx.space.nb_axis,
                "gpu": ctx.space.gpu_axis,
                "cu": ctx.space.cu_axis,
            },
            "dvfs": {
                "cpu": dict(dvfs.CPU_PSTATES),
                "nb": dict(dvfs.NB_PSTATES),
                "gpu": dict(dvfs.GPU_DPM_STATES),
                "cu": tuple(dvfs.CU_COUNTS),
            },
            "variant": request.variant,
            "params": dict(request.params),
        }
        if "predictor" in spec.needs(request):
            payload["predictor"] = ctx.predictor_fingerprint()
        return describe(payload)

    def key_for(self, ctx: Any, request: RunRequest, run_key: RunKey,
                base: Any = None) -> str:
        """Cache key of one produced run of a request."""
        base = base if base is not None else self._base_payload(ctx, request)
        return fingerprint({"base": base, "run": list(run_key)})

    # ----- cache access ---------------------------------------------------------

    def load_request(self, ctx: Any,
                     request: RunRequest) -> Optional[Dict[RunKey, RunResult]]:
        """Load every run a request produces, or ``None`` on any miss."""
        keys = produced_keys(request)
        self.stats.requests += 1
        base = self._base_payload(ctx, request)
        loaded: Dict[RunKey, RunResult] = {}
        for run_key in keys:
            payload = self.cache.load(self.key_for(ctx, request, run_key, base))
            if payload is None:
                return None
            try:
                loaded[run_key] = run_result_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                self.cache.stats.corrupt += 1
                return None
        return loaded

    def store_request(self, ctx: Any, request: RunRequest,
                      runs: Dict[RunKey, RunResult]) -> None:
        """Persist every run a request produced."""
        base = self._base_payload(ctx, request)
        for run_key, run in runs.items():
            summary = {
                "benchmark": request.benchmark,
                "variant": request.variant,
                "run": [str(part) for part in run_key],
                "params": [[k, repr(v)] for k, v in request.params],
            }
            self.cache.store(
                self.key_for(ctx, request, run_key, base),
                run_result_to_dict(run),
                summary=summary,
            )

    # ----- prefetch -------------------------------------------------------------

    def prefetch(self, ctx: Any,
                 requests: Sequence[RunRequest]) -> EngineStats:
        """Materialize a request matrix into the context's run store.

        Cache hits are loaded; misses are computed — in parallel when
        ``jobs > 1`` — stored, and installed into ``ctx._runs`` so the
        experiment modules that follow only ever see in-memory hits.

        Returns:
            The engine's cumulative stats (also kept on ``self.stats``).
        """
        todo: List[RunRequest] = []
        seen: set = set()
        for request in requests:
            keys = produced_keys(request)
            if keys in seen:
                continue
            seen.add(keys)
            if all(key in ctx._runs for key in keys):
                continue
            loaded = self.load_request(ctx, request)
            if loaded is not None:
                ctx._runs.update(loaded)
                continue
            todo.append(request)

        if not todo:
            return self.stats

        obs = self._obs_for(ctx)
        start = time.perf_counter()
        if self.jobs > 1 and len(todo) > 1:
            self._compute_parallel(ctx, todo, obs)
        else:
            for request in todo:
                keys = produced_keys(request)
                # An earlier miss may have computed this as a dependency
                # (e.g. the Turbo baseline behind target_throughput).
                if all(key in ctx._runs for key in keys):
                    continue
                task_start = time.perf_counter()
                if obs.enabled:
                    computed, spans = _compute_request_with_capture(
                        ctx, request, obs.registry
                    )
                else:
                    computed = VARIANTS[request.variant].compute(ctx, request)
                    spans = []
                ctx._runs.update(computed)
                self.store_request(ctx, request, computed)
                self.stats.computed += 1
                if obs.enabled:
                    self._record_task(
                        obs, "serial", time.perf_counter() - task_start
                    )
                    for span in spans:
                        obs.tracer.emit(span)
        self.stats.compute_s += time.perf_counter() - start
        if obs.enabled:
            publish_cache_stats(obs.registry, self.cache.stats, scope="engine")
        return self.stats

    def _obs_for(self, ctx: Any) -> Instrumentation:
        """The live instrumentation of a prefetch: the engine's own, or
        (when the engine was built without one) the context's."""
        if self.obs.enabled:
            return self.obs
        return or_noop(getattr(ctx, "obs", None))

    def _record_task(self, obs: Instrumentation, mode: str,
                     seconds: float) -> None:
        obs.registry.counter(
            "repro_engine_tasks_total", "Requests computed by the engine"
        ).inc(mode=mode)
        obs.registry.histogram(
            "repro_engine_task_seconds",
            "Wall-clock seconds spent computing one request",
        ).observe(seconds, mode=mode)

    def _compute_parallel(self, ctx: Any, todo: List[RunRequest],
                          obs: Instrumentation = NOOP) -> None:
        """Fan the misses out over a process pool and collect results."""
        # Materialize the predictor up front: workers must never each
        # pay for Random Forest training, and the trained object ships
        # once per worker via the pool initializer.
        if any("predictor" in VARIANTS[r.variant].needs(r) for r in todo):
            ctx.predictor
        # Ship the static hardware feature block once through shared
        # memory instead of once per worker through the pickled spec:
        # it is a pure function of the config lattice, so every worker
        # table adopting it is float-for-float the one it would build.
        max_workers = min(self.jobs, len(todo), os.cpu_count() or self.jobs)
        with contextlib.ExitStack() as stack:
            shared_spec = None
            try:
                from repro.engine.shm import export_block
                from repro.hardware.table import (
                    ConfigTable,
                    lattice_feature_key,
                )

                table = ConfigTable(ctx.space)
                shared_export = export_block(table.feature_block)
                # Register the unlink before anything else can raise
                # (RL010): it runs after the pool has fully exited
                # (ExitStack callbacks run LIFO, pool shutdown first).
                stack.callback(shared_export.close)
                shared_spec = {
                    "key": lattice_feature_key(ctx.space),
                    "handle": shared_export.handle,
                }
            except Exception:
                shared_spec = None  # workers build their own blocks
            spec_bytes = pickle.dumps(
                {
                    "simulator": ctx.sim,
                    "predictor": ctx._predictor,
                    "cache_dir": ctx._cache_dir,
                    "alpha": ctx.alpha,
                    "obs": obs.enabled,
                    "shared_table": shared_spec,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            pool = stack.enter_context(concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_worker_init,
                initargs=(spec_bytes,),
            ))
            # Results are collected in submission (request) order, not
            # completion order, so worker span re-emission — and the
            # first-failure raise — is deterministic across job counts.
            futures = [
                (request, pool.submit(_worker_compute, request))
                for request in todo
            ]
            try:
                for request, future in futures:
                    status, payload, obs_payload = future.result()
                    if status != "ok":
                        raise EngineWorkerError(request, payload)
                    runs = {
                        tuple(key): run_result_from_dict(run_dict)
                        for key, run_dict in payload
                    }
                    ctx._runs.update(runs)
                    self.store_request(ctx, request, runs)
                    self.stats.computed += 1
                    self.stats.parallel_computed += 1
                    if obs_payload is not None and obs.enabled:
                        obs.registry.merge(obs_payload["registry"])
                        self._record_task(obs, "worker", obs_payload["task_s"])
                        for span in obs_payload["spans"]:
                            obs.tracer.emit(span)
            finally:
                for _, future in futures:
                    future.cancel()


# ----- request computation with span capture --------------------------------


def _compute_request_with_capture(
    ctx: Any, request: RunRequest, registry: Any
) -> Tuple[Dict[RunKey, RunResult], List[Dict[str, Any]]]:
    """Compute one request, capturing the spans of the runs it produces.

    The context's instrumentation is swapped for a private tracer (the
    registry flows through unswapped) for the duration of the compute,
    and the captured spans are filtered to the app/policy identities of
    the runs the request itself produces.  Dependency runs computed on
    the way (e.g. the Turbo baseline behind ``target_throughput``) are
    dropped: on the serial path they trace under their own request, so
    filtering is what keeps a trace identical across job counts.
    """
    prior = getattr(ctx, "obs", None)
    capture = Instrumentation(registry, Tracer(keep=True))
    ctx.obs = capture
    try:
        runs = VARIANTS[request.variant].compute(ctx, request)
    finally:
        ctx.obs = prior if prior is not None else NOOP
    identities = {(run.app_name, run.policy_name) for run in runs.values()}
    spans = [
        span
        for span in capture.tracer.spans
        if (
            span.get("attributes", {}).get("app"),
            span.get("attributes", {}).get("policy"),
        )
        in identities
    ]
    return runs, spans


# ----- worker side ----------------------------------------------------------

_WORKER_CTX: Any = None
_WORKER_OBS = False


# repro-lint: shm-attach
def _worker_init(spec_bytes: bytes) -> None:
    """Build this worker's private ExperimentContext from the spec."""
    global _WORKER_CTX, _WORKER_OBS
    from repro.experiments.common import ExperimentContext

    spec = pickle.loads(spec_bytes)
    shared_table = spec.get("shared_table")
    if shared_table is not None:
        # Best-effort zero-copy adoption: any failure (e.g. the segment
        # vanished) just leaves this worker building its own block.
        try:
            from repro.engine.shm import attach_block
            from repro.hardware.table import register_shared_feature_block

            register_shared_feature_block(
                shared_table["key"], attach_block(shared_table["handle"])
            )
        except Exception:
            pass
    _WORKER_CTX = ExperimentContext(
        simulator=spec["simulator"],
        predictor=spec["predictor"],
        cache_dir=spec["cache_dir"],
        alpha=spec["alpha"],
    )
    _WORKER_OBS = bool(spec.get("obs", False))


def _worker_compute(request: RunRequest) -> Tuple[str, Any, Any]:
    """Execute one request; never raises across the process boundary.

    Returns ``("ok", [(key, run_dict), ...], obs_payload)`` on success
    or ``("err", traceback_text, None)`` on failure, so the parent can
    re-raise with the worker's original traceback attached.  When the
    parent's instrumentation is live, ``obs_payload`` ships this
    request's registry snapshot, filtered span dicts, and compute time
    back for merging.
    """
    try:
        if _WORKER_CTX is None:
            raise RuntimeError("engine worker used before initialization")
        obs_payload: Any = None
        if _WORKER_OBS:
            registry = MetricsRegistry()
            start = time.perf_counter()
            runs, spans = _compute_request_with_capture(
                _WORKER_CTX, request, registry
            )
            obs_payload = {
                "registry": registry.snapshot(),
                "spans": spans,
                "task_s": time.perf_counter() - start,
            }
        else:
            runs = VARIANTS[request.variant].compute(_WORKER_CTX, request)
        return (
            "ok",
            [
                (list(key), run_result_to_dict(run))
                for key, run in runs.items()
            ],
            obs_payload,
        )
    except BaseException:
        import traceback

        return ("err", traceback.format_exc(), None)


def canonical_requests(
    ctx: Any,
    benchmark_names: Optional[Iterable[str]] = None,
) -> List[RunRequest]:
    """The standard app x policy matrix for a set of benchmarks.

    Covers the seven canonical run variants of
    :class:`~repro.experiments.common.ExperimentContext` (Turbo, PPK,
    PPK-oracle, the MPC pairs, idealized MPC, and the theoretically
    optimal plan) — everything Figures 4 and 8-12, 14, 15 and the
    headline table consume.
    """
    names = list(
        benchmark_names if benchmark_names is not None else ctx.benchmark_names
    )
    requests: List[RunRequest] = []
    for name in names:
        requests.append(RunRequest(name, "turbo"))
        requests.append(RunRequest(name, "ppk"))
        requests.append(RunRequest(name, "ppk_oracle"))
        requests.append(RunRequest(name, "mpc_pair", (("alpha", ctx.alpha),)))
        requests.append(
            RunRequest(name, "mpc_pair_full", (("alpha", ctx.alpha),))
        )
        requests.append(RunRequest(name, "mpc_ideal"))
        requests.append(RunRequest(name, "to"))
    return requests
