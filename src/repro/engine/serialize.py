"""Exact JSON serialization of run traces and experiment tables.

Round-trips must be *lossless*: the acceptance bar for the engine is
that a result loaded from cache (or shipped back from a worker process)
is indistinguishable from one computed in-process.  Python's ``json``
writes floats with ``repr``, which round-trips every finite double
exactly, so numeric equality is preserved bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.common import ExperimentTable
from repro.hardware.config import HardwareConfig
from repro.sim.trace import LaunchRecord, RunResult

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "table_to_dict",
    "table_from_dict",
]

#: Bump when the on-disk record layout changes.
SCHEMA_VERSION = 1

_RECORD_FIELDS = (
    "index",
    "kernel_key",
    "time_s",
    "gpu_energy_j",
    "cpu_energy_j",
    "instructions",
    "overhead_time_s",
    "overhead_gpu_energy_j",
    "overhead_cpu_energy_j",
    "horizon",
    "fail_safe",
)


def run_result_to_dict(run: RunResult) -> Dict[str, Any]:
    """Serialize a :class:`RunResult` to a JSON-able dict."""
    return {
        "schema": SCHEMA_VERSION,
        "app_name": run.app_name,
        "policy_name": run.policy_name,
        "base_index": run.base_index,
        "launches": [
            {
                "config": {
                    "cpu": r.config.cpu,
                    "nb": r.config.nb,
                    "gpu": r.config.gpu,
                    "cu": r.config.cu,
                },
                **{name: getattr(r, name) for name in _RECORD_FIELDS},
            }
            for r in run.launches
        ],
    }


def run_result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises on unknown schema."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported run schema: {payload.get('schema')!r}")
    result = RunResult(
        app_name=payload["app_name"],
        policy_name=payload["policy_name"],
        # Entries written before base_index existed omit it (schema 1
        # stays readable): those are always complete runs, i.e. 0.
        base_index=int(payload.get("base_index", 0)),
    )
    for entry in payload["launches"]:
        config = HardwareConfig(**entry["config"])
        result.append(
            LaunchRecord(config=config, **{k: entry[k] for k in _RECORD_FIELDS})
        )
    return result


def _check_cell(cell: Any) -> Any:
    if cell is None or isinstance(cell, (bool, int, float, str)):
        return cell
    raise TypeError(
        f"table cell {cell!r} of type {type(cell).__name__} does not "
        "round-trip through JSON exactly"
    )


def table_to_dict(table: ExperimentTable) -> Dict[str, Any]:
    """Serialize an :class:`ExperimentTable` to a JSON-able dict."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": table.experiment_id,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[_check_cell(c) for c in row] for row in table.rows],
    }


def table_from_dict(payload: Dict[str, Any]) -> ExperimentTable:
    """Rebuild an :class:`ExperimentTable`; raises on unknown schema."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported table schema: {payload.get('schema')!r}")
    rows: List[List[Any]] = [list(row) for row in payload["rows"]]
    return ExperimentTable(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=rows,
    )
