"""The registry of policy-run variants the engine can execute.

A :class:`RunRequest` names one unit of cacheable, parallelizable work:
``(benchmark, variant, params)``.  Each variant registered in
:data:`VARIANTS` knows

* which in-memory run keys it **produces** (an MPC invocation pair
  yields both the profiling and the steady-state run),
* how to **compute** those runs against an
  :class:`~repro.experiments.common.ExperimentContext`, and
* which context-level inputs its cache key **needs** (e.g. the trained
  predictor's fingerprint) beyond the app/simulator/params that every
  key includes.

Both the serial path (``ExperimentContext`` methods) and the engine's
worker processes execute requests through this registry, which is what
makes ``--jobs 4`` byte-identical to ``--jobs 1``: there is exactly one
implementation of every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.core.manager import MPCPowerManager
from repro.core.oracle import solve_theoretically_optimal
from repro.core.policies import PlannedPolicy, PPKPolicy
from repro.ml.errors import SyntheticErrorPredictor
from repro.obs import Instrumentation, NOOP
from repro.runtime.session import invocation_pair
from repro.sim.trace import RunResult
from repro.sim.turbocore import TurboCorePolicy

__all__ = ["RunRequest", "VariantSpec", "VARIANTS", "produced_keys"]

#: An in-memory run key, exactly as stored in ``ExperimentContext._runs``.
RunKey = Tuple[Any, ...]


@dataclass(frozen=True)
class RunRequest:
    """One unit of engine work: a policy-run variant on one benchmark.

    Attributes:
        benchmark: Benchmark name (any Table-IV name).
        variant: Registry key in :data:`VARIANTS`.
        params: Canonical ``(name, value)`` pairs parameterizing the
            variant.  Values must be picklable (they travel to worker
            processes) and fingerprintable.
    """

    benchmark: str
    variant: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        """Value of one named parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """Short human-readable form for logs and error messages."""
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.benchmark}/{self.variant}({params})"


@dataclass(frozen=True)
class VariantSpec:
    """How one variant is keyed, computed, and fingerprinted.

    Attributes:
        produces: Maps a request to the run keys it computes.
        compute: Executes the request against a context, returning one
            :class:`RunResult` per produced key.
        needs: Names of context-level fingerprint dependencies; the
            single dynamic dependency is ``"predictor"``.
    """

    produces: Callable[[RunRequest], Tuple[RunKey, ...]]
    compute: Callable[[Any, RunRequest], Dict[RunKey, RunResult]]
    needs: Callable[[RunRequest], Tuple[str, ...]]


def _static(*suffixes: str) -> Callable[[RunRequest], Tuple[RunKey, ...]]:
    def produces(request: RunRequest) -> Tuple[RunKey, ...]:
        return tuple((request.benchmark, suffix) for suffix in suffixes)
    return produces


def _needs(*names: str) -> Callable[[RunRequest], Tuple[str, ...]]:
    return lambda request: names


# ----- compute implementations ----------------------------------------------
#
# These bodies are the single source of truth for how each canonical run
# is produced; ExperimentContext delegates here.  They intentionally use
# the context's shared building blocks (app/predictor/oracle/target) so
# that derived runs (e.g. the Turbo baseline behind target_throughput)
# flow through the cache as their own requests.


def _obs(ctx: Any) -> Instrumentation:
    """The context's instrumentation (no-op for contexts without one)."""
    return getattr(ctx, "obs", NOOP)


def _compute_turbo(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    run = ctx.sim.run(
        ctx.app(name), TurboCorePolicy(tdp_w=ctx.apu.tdp_w), obs=_obs(ctx)
    )
    return {(name, "turbo"): run}


def _compute_ppk(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    policy = PPKPolicy(ctx.target_throughput(name), ctx.predictor, ctx.space)
    return {(name, "ppk"): ctx.sim.run(ctx.app(name), policy, obs=_obs(ctx))}


def _compute_ppk_oracle(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    policy = PPKPolicy(ctx.target_throughput(name), ctx.oracle(name), ctx.space)
    run = ctx.sim.run(
        ctx.app(name), policy, charge_overhead=False, obs=_obs(ctx)
    )
    return {(name, "ppk_oracle"): run}


def _compute_mpc_pair(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    adaptive = request.variant == "mpc_pair"
    obs = _obs(ctx)
    manager = MPCPowerManager(
        ctx.target_throughput(name),
        ctx.predictor,
        ctx.space,
        alpha=request.param("alpha", ctx.alpha),
        adaptive_horizon=adaptive,
        overhead_model=ctx.sim.overhead,
        obs=obs,
    )
    app = ctx.app(name)
    suffix = "" if adaptive else "_full"
    first, steady = invocation_pair(ctx.sim.session(manager, obs=obs), app)
    return {
        (name, "mpc_first" + suffix): first,
        (name, "mpc" + suffix): steady,
    }


def _compute_mpc_ideal(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    obs = _obs(ctx)
    manager = MPCPowerManager(
        ctx.target_throughput(name),
        ctx.oracle(name),
        ctx.space,
        adaptive_horizon=False,
        overhead_model=ctx.sim.overhead,
        obs=obs,
    )
    app = ctx.app(name)
    _, run = invocation_pair(
        ctx.sim.session(manager, obs=obs), app, charge_overhead=False
    )
    return {(name, "mpc_ideal"): run}


def _compute_mpc_variant(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    tag = request.param("tag")
    sim = request.param("simulator") or ctx.sim
    manager_kwargs = dict(request.param("kwargs", ()))
    obs = _obs(ctx)
    manager = MPCPowerManager(
        ctx.target_throughput(name),
        ctx.predictor,
        ctx.space,
        overhead_model=sim.overhead,
        obs=obs,
        **manager_kwargs,
    )
    app = ctx.app(name)
    _, run = invocation_pair(sim.session(manager, obs=obs), app)
    return {(name, "mpc_variant", tag): run}


def _run_with_predictor(ctx: Any, name: str, predictor: Any) -> RunResult:
    """Full-horizon, overhead-free MPC steady state (Figure 13 setup)."""
    obs = _obs(ctx)
    manager = MPCPowerManager(
        ctx.target_throughput(name),
        predictor,
        ctx.space,
        adaptive_horizon=False,
        overhead_model=ctx.sim.overhead,
        obs=obs,
    )
    app = ctx.app(name)
    _, steady = invocation_pair(
        ctx.sim.session(manager, obs=obs), app, charge_overhead=False
    )
    return steady


def _compute_mpc_pred(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    tag = request.param("tag")
    predictor = request.param("predictor")
    if predictor is None:
        predictor = ctx.predictor
    run = _run_with_predictor(ctx, name, predictor)
    return {(name, "mpc_pred", tag): run}


def error_model_tag(time_error: float, power_error: float) -> str:
    """Cache tag of a synthetic-error variant (shared with fig13)."""
    return f"err_{time_error:g}_{power_error:g}"


def _compute_mpc_error(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    time_error = request.param("time_error")
    power_error = request.param("power_error")
    predictor = SyntheticErrorPredictor(
        ctx.oracle(name), time_error, power_error
    )
    run = _run_with_predictor(ctx, name, predictor)
    return {(name, "mpc_pred", error_model_tag(time_error, power_error)): run}


def _compute_to(ctx: Any, request: RunRequest) -> Dict[RunKey, RunResult]:
    name = request.benchmark
    plan = solve_theoretically_optimal(
        ctx.app(name), ctx.apu, ctx.target_throughput(name), ctx.space
    )
    policy = PlannedPolicy(plan.configs, name="TheoreticallyOptimal")
    run = ctx.sim.run(
        ctx.app(name), policy, charge_overhead=False, obs=_obs(ctx)
    )
    return {(name, "to"): run}


def _produces_mpc_variant(request: RunRequest) -> Tuple[RunKey, ...]:
    return ((request.benchmark, "mpc_variant", request.param("tag")),)


def _produces_mpc_pred(request: RunRequest) -> Tuple[RunKey, ...]:
    return ((request.benchmark, "mpc_pred", request.param("tag")),)


def _produces_mpc_error(request: RunRequest) -> Tuple[RunKey, ...]:
    tag = error_model_tag(
        request.param("time_error"), request.param("power_error")
    )
    return ((request.benchmark, "mpc_pred", tag),)


def _needs_mpc_pred(request: RunRequest) -> Tuple[str, ...]:
    # Only the context's own predictor is an out-of-request dependency;
    # an explicitly supplied predictor is fingerprinted from the params.
    return ("predictor",) if request.param("predictor") is None else ()


#: Every variant the engine can execute, keyed by request variant name.
VARIANTS: Dict[str, VariantSpec] = {
    "turbo": VariantSpec(_static("turbo"), _compute_turbo, _needs()),
    "ppk": VariantSpec(_static("ppk"), _compute_ppk, _needs("predictor")),
    "ppk_oracle": VariantSpec(
        _static("ppk_oracle"), _compute_ppk_oracle, _needs()
    ),
    "mpc_pair": VariantSpec(
        _static("mpc_first", "mpc"), _compute_mpc_pair, _needs("predictor")
    ),
    "mpc_pair_full": VariantSpec(
        _static("mpc_first_full", "mpc_full"),
        _compute_mpc_pair,
        _needs("predictor"),
    ),
    "mpc_ideal": VariantSpec(_static("mpc_ideal"), _compute_mpc_ideal, _needs()),
    "mpc_variant": VariantSpec(
        _produces_mpc_variant, _compute_mpc_variant, _needs("predictor")
    ),
    "mpc_pred": VariantSpec(
        _produces_mpc_pred, _compute_mpc_pred, _needs_mpc_pred
    ),
    "mpc_error": VariantSpec(
        _produces_mpc_error, _compute_mpc_error, _needs()
    ),
    "to": VariantSpec(_static("to"), _compute_to, _needs()),
}


def produced_keys(request: RunRequest) -> Tuple[RunKey, ...]:
    """The in-memory run keys a request computes."""
    try:
        spec = VARIANTS[request.variant]
    except KeyError:
        raise KeyError(
            f"unknown variant {request.variant!r}; known: {', '.join(VARIANTS)}"
        ) from None
    return spec.produces(request)
