"""Maps experiment keys to the engine requests they will consume.

:func:`requests_for` answers "which policy runs does this set of
experiments need?" so the runner can hand the whole app x policy matrix
to :meth:`~repro.engine.core.ExperimentEngine.prefetch` before any
experiment module executes.  The mapping intentionally mirrors what each
module pulls from :class:`~repro.experiments.common.ExperimentContext`;
an experiment missing from the table simply computes on demand through
the context (correct, just not prefetched).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

from repro.engine.variants import RunRequest

__all__ = ["requests_for"]


def _per_benchmark(*variant_builders: Callable[[Any, str], RunRequest]):
    def build(ctx: Any) -> List[RunRequest]:
        return [
            builder(ctx, name)
            for name in ctx.benchmark_names
            for builder in variant_builders
        ]
    return build


def _turbo(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "turbo")


def _ppk(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "ppk")


def _ppk_oracle(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "ppk_oracle")


def _mpc_pair(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "mpc_pair", (("alpha", ctx.alpha),))


def _mpc_pair_full(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "mpc_pair_full", (("alpha", ctx.alpha),))


def _mpc_ideal(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "mpc_ideal")


def _to(ctx: Any, name: str) -> RunRequest:
    return RunRequest(name, "to")


def _fig3(ctx: Any) -> List[RunRequest]:
    from repro.experiments.fig3_throughput import FIG3_BENCHMARKS

    return [RunRequest(name, "turbo") for name in FIG3_BENCHMARKS]


def _fig13(ctx: Any) -> List[RunRequest]:
    from repro.experiments.fig13_prediction_error import ERROR_MODELS

    requests: List[RunRequest] = []
    for name in ctx.benchmark_names:
        requests.append(RunRequest(name, "turbo"))
        requests.append(
            RunRequest(name, "mpc_pred",
                       (("predictor", None), ("tag", "rf_full")))
        )
        for _, time_err, power_err in ERROR_MODELS:
            requests.append(
                RunRequest(
                    name,
                    "mpc_error",
                    (("power_error", power_err), ("time_error", time_err)),
                )
            )
    return requests


def _design_ablation(tag: str, **kwargs: Any) -> Callable[[Any], List[RunRequest]]:
    def build(ctx: Any) -> List[RunRequest]:
        from repro.experiments.ablation_design import PHASE_SENSITIVE

        params = (
            ("kwargs", tuple(sorted(kwargs.items()))),
            ("simulator", None),
            ("tag", tag),
        )
        requests: List[RunRequest] = []
        for name in PHASE_SENSITIVE:
            requests.append(RunRequest(name, "turbo"))
            requests.append(RunRequest(name, "mpc_pair", (("alpha", ctx.alpha),)))
            requests.append(RunRequest(name, "mpc_variant", params))
        return requests
    return build


def _ablation_hiding(ctx: Any) -> List[RunRequest]:
    from repro.experiments.ablation_design import (
        PHASE_SENSITIVE,
        hidden_simulator,
    )

    sim = hidden_simulator(ctx)
    requests: List[RunRequest] = []
    for name in PHASE_SENSITIVE:
        requests.append(RunRequest(name, "turbo"))
        requests.append(RunRequest(name, "mpc_pair", (("alpha", ctx.alpha),)))
        requests.append(
            RunRequest(
                name,
                "mpc_variant",
                (("kwargs", ()), ("simulator", sim), ("tag", "hidden")),
            )
        )
    return requests


#: Per-experiment request builders.  Static experiments (tables, fig2,
#: fig7) run no policy simulations and are absent on purpose.
_EXPERIMENT_REQUESTS: Dict[str, Callable[[Any], List[RunRequest]]] = {
    "fig3": _fig3,
    "fig4": _per_benchmark(_turbo, _ppk_oracle, _to),
    "fig8": _per_benchmark(_turbo, _ppk, _mpc_pair),
    "fig9": _per_benchmark(_turbo, _ppk, _mpc_pair),
    "fig10": _per_benchmark(_turbo, _ppk, _mpc_pair),
    "fig11": _per_benchmark(_turbo, _ppk, _mpc_pair),
    "fig12": _per_benchmark(_turbo, _mpc_ideal, _to),
    "fig13": _fig13,
    "fig14": _per_benchmark(_turbo, _mpc_pair),
    "fig15": _per_benchmark(_turbo, _mpc_pair),
    "headline": _per_benchmark(_turbo, _ppk, _mpc_pair),
    "ablation": _per_benchmark(_turbo, _mpc_pair, _mpc_pair_full),
    "ablation_search_order": _design_ablation(
        "no_order", use_search_order=False
    ),
    "ablation_window_reserve": _design_ablation(
        "no_reserve", window_reserve=False
    ),
    "ablation_overhead_hiding": _ablation_hiding,
}


def requests_for(keys: Iterable[str], ctx: Any) -> List[RunRequest]:
    """The deduplicated request matrix of a set of experiment keys.

    Args:
        keys: Experiment keys as named in ``ALL_EXPERIMENTS``.  Unknown
            or static keys contribute nothing.
        ctx: The context the experiments will run against.

    Returns:
        Requests in first-seen order, without duplicates, turbos first —
        workers recompute the Turbo baseline behind ``target_throughput``
        themselves, but ordering it first keeps the serial path from
        interleaving baseline and policy work.
    """
    seen: set = set()
    turbos: List[RunRequest] = []
    rest: List[RunRequest] = []
    for key in keys:
        builder = _EXPERIMENT_REQUESTS.get(key)
        if builder is None:
            continue
        for request in builder(ctx):
            marker = (request.benchmark, request.variant, request.params)
            if marker in seen:
                continue
            seen.add(marker)
            (turbos if request.variant == "turbo" else rest).append(request)
    return turbos + rest
