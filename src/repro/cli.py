"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                         # available benchmarks
    python -m repro.cli run kmeans --policy mpc      # manage one benchmark
    python -m repro.cli run Spmv --policy all        # compare every policy
    python -m repro.cli train                        # (re)train the forest
    python -m repro.cli experiments fig8 fig9        # regenerate figures
    python -m repro.cli experiments --jobs 4         # parallel + cached
    python -m repro.cli report -o EXPERIMENTS.md     # full markdown report
    python -m repro.cli run kmeans --trace-out t.jsonl --metrics-out m.prom
    python -m repro.cli obs summarize t.jsonl        # per-run decision summary
    python -m repro.cli trace record kmeans -o k.jsonl   # capture a run
    python -m repro.cli trace replay k.jsonl         # re-check it float-for-float
    python -m repro.cli trace generate -o traces/    # adversarial corpus
    python -m repro.cli fleet run t.jsonl --nodes 4 --cap-w 250  # fleet sim
    python -m repro.cli bench fleet --quick          # fleet scaling smoke
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.core.manager import MPCPowerManager
from repro.core.oracle import solve_theoretically_optimal
from repro.core.policies import PlannedPolicy, PPKPolicy
from repro.ml.predictors import evaluate_predictor, train_predictor
from repro.sim.metrics import energy_savings_pct, speedup
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.suites import BENCHMARK_NAMES, all_benchmarks, benchmark

__all__ = ["main", "build_parser"]

_POLICIES = ("turbo", "ppk", "mpc", "to", "all")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic GPGPU Power Management "
        "Using Adaptive Model Predictive Control' (HPCA 2017).",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="threshold for the repro.* logging hierarchy (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-IV benchmarks")

    run = sub.add_parser("run", help="run a benchmark under a policy")
    run.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run.add_argument("--policy", choices=_POLICIES, default="all")
    run.add_argument("--alpha", type=float, default=0.05,
                     help="adaptive-horizon performance bound")
    run.add_argument("--full-horizon", action="store_true",
                     help="disable the adaptive horizon")
    run.add_argument("--stream", action="store_true",
                     help="host each policy in a fault-isolated streaming "
                     "session and report per-session statistics")
    run.add_argument("--cache-dir", default=".cache",
                     help="Random Forest cache directory")
    _add_obs_flags(run)

    train = sub.add_parser("train", help="train/evaluate the Random Forest")
    train.add_argument("--cache-dir", default=".cache")

    analyze = sub.add_parser(
        "analyze", help="analyse an MPC run of a benchmark"
    )
    analyze.add_argument("benchmark", choices=BENCHMARK_NAMES)
    analyze.add_argument("--cache-dir", default=".cache")
    analyze.add_argument("--oracle", action="store_true",
                         help="use the oracle predictor (skip training)")

    experiments = sub.add_parser(
        "experiments", help="regenerate tables/figures of the paper"
    )
    experiments.add_argument("keys", nargs="*",
                             help="experiment keys (default: all)")
    _add_engine_flags(experiments)

    report = sub.add_parser("report", help="write the EXPERIMENTS.md report")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    _add_engine_flags(report)

    lint = sub.add_parser(
        "lint", help="run the AST invariant linter (RL001-RL013)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--format", dest="lint_format", default="text",
        choices=("text", "json"), help="report format (default: text)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (id, scope, index needs) and exit",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="absorb findings recorded in this baseline file; only "
        "new findings fail the run",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="snapshot the current findings into FILE and exit 0",
    )
    lint.add_argument(
        "--stats", action="store_true",
        help="append per-rule wall-clock timings to the report "
        "(stderr when --format json keeps stdout machine-readable)",
    )

    bench = sub.add_parser("bench", help="microbenchmarks of the runtime hot paths")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    decide = bench_sub.add_parser(
        "decide",
        help="decisions/sec of the hill-climb, scalar vs. columnar paths",
    )
    decide.add_argument(
        "--quick", action="store_true",
        help="fewer timed decisions and a small forest (CI smoke mode)",
    )
    decide.add_argument(
        "--output", default=None, metavar="PATH",
        help="trajectory JSON file (default: BENCH_decide.json)",
    )
    decide.add_argument(
        "--label", default=None, help="label for this trajectory entry"
    )
    decide.add_argument(
        "--benchmark", default=None, metavar="NAME",
        help="benchmark supplying the decision workload (default: kmeans)",
    )
    decide.add_argument(
        "--cache-dir", default=".cache",
        help="predictor cache directory (default: .cache)",
    )
    decide.add_argument(
        "--max-health-overhead", default=None, type=float, metavar="PCT",
        help="fail if the health-vs-NOOP hot-path overhead exceeds PCT",
    )
    bench_fleet = bench_sub.add_parser(
        "fleet",
        help="fleet decisions/sec across shard counts and global caps",
    )
    bench_fleet.add_argument(
        "--quick", action="store_true",
        help="smaller trace and the {1,4}-node grid (CI smoke mode)",
    )
    bench_fleet.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="trajectory JSON file (default: BENCH_fleet.json)",
    )
    bench_fleet.add_argument(
        "-l", "--label", default=None,
        help="label for this trajectory entry",
    )
    bench_fleet.add_argument("--seed", type=int, default=0,
                             help="bench workload seed (default: 0)")
    bench_fleet.add_argument(
        "--epoch-launches", type=int, default=32, metavar="N",
        help="budget-epoch length in dispatched launches (default: 32)",
    )
    bench_fleet.add_argument(
        "--min-speedup", default=None, type=float, metavar="X",
        help="fail unless the best 4-node speedup over the single-node "
        "batched baseline reaches X (pass only on multi-core hosts)",
    )

    fleet = sub.add_parser(
        "fleet", help="shard a multi-session trace across simulated nodes"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="drive a trace through N nodes under a hierarchical power cap",
    )
    fleet_run.add_argument("trace", help="JSONL kernel-launch trace file")
    fleet_run.add_argument("--nodes", type=int, default=1,
                           help="fleet size (default: 1)")
    fleet_run.add_argument(
        "--cap-w", type=float, default=None, metavar="W",
        help="global power cap in watts (default: uncapped)",
    )
    fleet_run.add_argument(
        "--epoch-launches", type=int, default=32, metavar="N",
        help="budget-epoch length in dispatched launches (default: 32)",
    )
    fleet_run.add_argument(
        "--transport", choices=("inline", "process"), default="inline",
        help="shard transport (default: inline)",
    )
    fleet_run.add_argument(
        "--max-sessions-per-node", type=int, default=None, metavar="N",
        help="admission limit per node (arrivals beyond it queue)",
    )
    fleet_run.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="admission-queue capacity (overflow sheds sessions)",
    )
    fleet_run.add_argument(
        "--rebalance", action="store_true",
        help="migrate sessions from the most- to the least-loaded node "
        "at epoch boundaries",
    )
    fleet_run.add_argument("--scalar", action="store_true",
                           help="force the scalar decision-core path")
    fleet_run.add_argument("--cache-dir", default=".cache",
                           help="Random Forest cache directory")
    fleet_run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write node launch spans plus fleet epoch spans to FILE",
    )
    fleet_run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the merged fleet metrics registry to FILE",
    )

    trace = sub.add_parser(
        "trace", help="record, replay, validate, and generate kernel-launch traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser(
        "record", help="capture a benchmark run as a decision-stamped trace"
    )
    record.add_argument("benchmark", choices=BENCHMARK_NAMES)
    record.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="trace file (default: <benchmark>-<policy>.jsonl)")
    record.add_argument("--policy", choices=("mpc", "ppk", "turbo"), default="mpc")
    record.add_argument("--invocations", type=int, default=2,
                        help="back-to-back invocations to trace (default: 2)")
    record.add_argument("--predictor", choices=("oracle", "forest"),
                        default="oracle")
    record.add_argument("--cache-dir", default=".cache",
                        help="Random Forest cache directory")
    replay = trace_sub.add_parser(
        "replay",
        help="replay a trace; recorded decisions are checked float-for-float",
    )
    replay.add_argument("trace", help="JSONL kernel-launch trace file")
    replay.add_argument("--no-check", action="store_true",
                        help="skip comparing against recorded decisions")
    replay.add_argument("--scalar", action="store_true",
                        help="force the scalar decision-core path")
    replay.add_argument("--cache-dir", default=".cache",
                        help="Random Forest cache directory")
    _add_obs_flags(replay)
    tvalidate = trace_sub.add_parser(
        "validate", help="check a trace file structurally and semantically"
    )
    tvalidate.add_argument("trace", help="JSONL kernel-launch trace file")
    tvalidate.add_argument(
        "--schema", default="docs/kernel_trace.schema.json",
        help="record schema (default: docs/kernel_trace.schema.json)",
    )
    generate = trace_sub.add_parser(
        "generate", help="generate the adversarial scenario corpus"
    )
    generate.add_argument(
        "families", nargs="*", metavar="FAMILY",
        help="scenario families (default: all)",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output-dir", default="traces",
                          help="output directory (default: traces/)")

    obs = sub.add_parser(
        "obs", help="inspect traces/metrics written by --trace-out"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="per-(session, app, policy) decision summary of a JSONL trace",
    )
    summarize.add_argument("trace", help="JSONL trace file")
    validate = obs_sub.add_parser(
        "validate", help="check every span of a JSONL trace against a schema"
    )
    validate.add_argument("trace", help="JSONL trace file")
    validate.add_argument(
        "--schema", default="docs/trace.schema.json",
        help="span schema (default: docs/trace.schema.json)",
    )
    health = obs_sub.add_parser(
        "health",
        help="model-health report (error ledgers, drift, states) of a "
             "JSONL span trace",
    )
    health.add_argument("trace", help="JSONL trace file (from --trace-out)")
    health.add_argument("--json", action="store_true",
                        help="emit the raw health report as JSON")
    health.add_argument(
        "--min-drift", type=int, default=None, metavar="N",
        help="exit 1 unless at least N drift events were detected",
    )
    health.add_argument(
        "--max-drift", type=int, default=None, metavar="N",
        help="exit 1 if more than N drift events were detected",
    )

    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Engine flags shared by the experiment-matrix subcommands."""
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the simulation matrix (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=".cache",
        help="engine/model cache directory (default: .cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    _add_obs_flags(parser)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the simulation subcommands."""
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write one JSONL decision span per kernel launch to FILE",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the metrics registry in Prometheus text format to FILE",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="install the streaming model-health monitor (repro_health_* "
             "metrics, health transition spans; implies live "
             "instrumentation)",
    )


def _obs_from_args(args: argparse.Namespace):
    """A live Instrumentation when any obs output was requested."""
    from repro.obs import NOOP, make_instrumentation

    health = bool(getattr(args, "health", False))
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or health
    ):
        return make_instrumentation(health=health)
    return NOOP


def _export_obs(obs, args: argparse.Namespace) -> None:
    """Write the requested trace/metrics artifacts of a finished command."""
    if not obs.enabled:
        return
    from repro.obs.exporters import write_jsonl, write_prometheus

    if args.trace_out:
        count = write_jsonl(obs.tracer.drain(), args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}")
    if args.metrics_out:
        write_prometheus(obs.registry, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if obs.health.enabled:
        from repro.obs import format_health_report

        print(format_health_report(obs.health.report()))


def _engine_context(args: argparse.Namespace):
    """Build the engine-backed ExperimentContext the flags describe."""
    from repro.engine import ExperimentEngine
    from repro.experiments.common import ExperimentContext

    obs = _obs_from_args(args)
    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=args.cache_dir,
        use_cache=not args.no_cache, obs=obs,
    )
    return ExperimentContext(cache_dir=args.cache_dir, engine=engine, obs=obs)


def _cmd_list() -> int:
    print(f"{'benchmark':16s} {'suite':14s} {'category':40s} {'pattern'}")
    for app in all_benchmarks():
        print(f"{app.name:16s} {app.suite:14s} {app.category.value:40s} {app.pattern}")
    return 0


def _stream_run(sim: Simulator, app, policy, *, invocations: int = 1,
                charge_overhead: bool = True, obs=None):
    """Host a policy in a fault-isolated streaming session.

    Replays ``invocations`` back-to-back event streams of ``app``
    through one session (index-0 events open new runs automatically)
    and returns ``(last_run_result, session)``.
    """
    from repro.runtime.events import launch_events

    session = sim.session(
        policy, isolate_faults=True, session_id=app.name,
        app_name=app.name, charge_overhead=charge_overhead, obs=obs,
    )
    for _ in range(invocations):
        for _outcome in session.run_stream(launch_events(app, app.name)):
            pass
    return session.result, session


def _cmd_run(args: argparse.Namespace) -> int:
    obs = _obs_from_args(args)
    sim = Simulator()
    app = benchmark(args.benchmark)
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w), obs=obs)
    target = turbo.instructions / turbo.kernel_time_s
    print(
        f"{app.name}: N={len(app)}, Turbo Core {turbo.kernel_time_s * 1e3:.1f} ms / "
        f"{turbo.energy_j:.2f} J"
    )

    wanted = _POLICIES[:-1] if args.policy == "all" else (args.policy,)
    predictor = None
    if "ppk" in wanted or "mpc" in wanted:
        predictor = train_predictor(apu=sim.apu, cache_dir=args.cache_dir)

    sessions = {}
    print(f"\n{'policy':8s} {'energy savings':>15s} {'speedup':>9s}")
    for kind in wanted:
        if kind == "turbo":
            run = turbo
        elif kind == "ppk":
            policy = PPKPolicy(target, predictor)
            if args.stream:
                run, sessions[kind] = _stream_run(sim, app, policy, obs=obs)
            else:
                run = sim.run(app, policy, obs=obs)
        elif kind == "mpc":
            manager = MPCPowerManager(
                target, predictor, alpha=args.alpha,
                adaptive_horizon=not args.full_horizon,
                overhead_model=sim.overhead, obs=obs,
            )
            if args.stream:
                run, sessions[kind] = _stream_run(
                    sim, app, manager, invocations=2, obs=obs
                )
            else:
                from repro.runtime.session import invocation_pair

                _, run = invocation_pair(sim.session(manager, obs=obs), app)
        elif kind == "to":
            plan = solve_theoretically_optimal(app, sim.apu, target)
            policy = PlannedPolicy(plan.configs, name="TO")
            if args.stream:
                run, sessions[kind] = _stream_run(
                    sim, app, policy, charge_overhead=False, obs=obs
                )
            else:
                run = sim.run(app, policy, charge_overhead=False, obs=obs)
        else:  # pragma: no cover - argparse restricts choices
            raise ValueError(kind)
        print(
            f"{kind:8s} {energy_savings_pct(run, turbo):14.1f}% "
            f"{speedup(run, turbo):9.3f}"
        )
    if sessions:
        print("\nsession stats:")
        for kind, session in sessions.items():
            print(f"  {kind:8s} {session.stats.format()}")
    if obs.enabled:
        from repro.obs import publish_session_stats

        for kind, session in sessions.items():
            publish_session_stats(obs.registry, session.stats, session=kind)
        _export_obs(obs, args)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    predictor = train_predictor(cache_dir=args.cache_dir)
    kernels = [k for app in all_benchmarks() for k in app.unique_kernels]
    time_mape, power_mape = evaluate_predictor(predictor, kernels)
    print(
        f"trained; out-of-sample MAPE: time {time_mape:.1f}% / "
        f"power {power_mape:.1f}% (paper: 25% / 12%)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.ml.predictors import OraclePredictor
    from repro.sim.analysis import (
        config_occupancy,
        energy_breakdown,
        kernel_summaries,
        throughput_phases,
    )

    sim = Simulator()
    app = benchmark(args.benchmark)
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s
    predictor = (
        OraclePredictor(sim.apu, app.unique_kernels)
        if args.oracle
        else train_predictor(apu=sim.apu, cache_dir=args.cache_dir)
    )
    from repro.runtime.session import invocation_pair

    manager = MPCPowerManager(target, predictor, overhead_model=sim.overhead)
    _, steady = invocation_pair(sim.session(manager), app)

    print(
        f"{app.name}: MPC {energy_savings_pct(steady, turbo):.1f}% energy "
        f"savings at {speedup(steady, turbo):.3f}x vs Turbo Core\n"
    )
    shares = energy_breakdown(steady).shares()
    print(
        f"energy split: GPU {100 * shares['gpu_kernel']:.1f}% / "
        f"CPU {100 * shares['cpu_kernel']:.1f}% / "
        f"optimizer {100 * shares['overhead']:.2f}%"
    )
    print("\nconfiguration occupancy (by time):")
    for config, share in sorted(config_occupancy(steady).items(),
                                key=lambda kv: -kv[1]):
        print(f"  {config:<26} {100 * share:5.1f}%")
    print("\nkernels by energy:")
    for summary in kernel_summaries(steady):
        print(
            f"  {summary.kernel_key:<22} x{summary.launches:<3} "
            f"{summary.total_energy_j:7.2f} J  failsafe {summary.fail_safe_launches}"
        )
    print("\nthroughput phases:")
    for start, end, label in throughput_phases(steady):
        print(f"  launches {start:>3}-{end - 1:>3}: {label}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    ctx = _engine_context(args)
    run_all(ctx, only=args.keys or None)
    _export_obs(ctx.obs, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    ctx = _engine_context(args)
    print(f"writing {write_report(args.output, ctx)}")
    _export_obs(ctx.obs, args)
    return 0


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Baseline,
        render_catalogue,
        render_json,
        render_stats,
        render_text,
        run_lint,
    )

    if args.list_rules:
        print(render_catalogue())
        return 0
    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_lint(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            baseline=baseline,
        )
    except (FileNotFoundError, KeyError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        snapshot = Baseline.from_findings(result.findings)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(snapshot.render() + "\n")
        print(
            f"repro lint: wrote baseline of {len(result.findings)} "
            f"findings to {args.write_baseline}"
        )
        return 0
    render = render_json if args.lint_format == "json" else render_text
    print(render(result))
    if args.stats:
        stats = render_stats(result)
        if args.lint_format == "json":
            print(stats, file=sys.stderr)
        else:
            print(stats)
    return result.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench_decide import (
        DEFAULT_BENCHMARK,
        DEFAULT_OUTPUT,
        format_entry,
        run_bench_decide,
    )

    if args.bench_command == "decide":
        entry = run_bench_decide(
            quick=args.quick,
            output=args.output or DEFAULT_OUTPUT,
            label=args.label,
            benchmark_name=args.benchmark or DEFAULT_BENCHMARK,
            cache_dir=args.cache_dir,
            max_health_overhead_pct=args.max_health_overhead,
        )
        print(format_entry(entry))
        print(f"appended to {args.output or DEFAULT_OUTPUT}")
        overhead = entry["health_overhead"]
        assert isinstance(overhead, dict)
        if not overhead["decisions_identical"]:
            print("bench decide: health arm diverged from NOOP", file=sys.stderr)
            return 1
        budget = overhead.get("budget_pct")
        if budget is not None and overhead["overhead_pct"] > budget:
            print(
                f"bench decide: health overhead {overhead['overhead_pct']}% "
                f"exceeds the {budget}% budget",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.bench_command == "fleet":
        from repro.experiments.bench_fleet import (
            DEFAULT_OUTPUT as FLEET_OUTPUT,
            best_speedup,
            format_fleet_entry,
            run_bench_fleet,
        )

        entry = run_bench_fleet(
            quick=args.quick,
            output=args.output or FLEET_OUTPUT,
            label=args.label,
            seed=args.seed,
            min_speedup=args.min_speedup,
            epoch_launches=args.epoch_launches,
        )
        print(format_fleet_entry(entry))
        print(f"appended to {args.output or FLEET_OUTPUT}")
        if not all(point["budget_conserved"] for point in entry["grid"]):
            print("bench fleet: budget conservation violated", file=sys.stderr)
            return 1
        if args.min_speedup is not None:
            speedup_x = best_speedup(entry)
            if speedup_x is None or speedup_x < args.min_speedup:
                print(
                    f"bench fleet: best 4-node speedup "
                    f"{speedup_x if speedup_x is not None else 'n/a'} "
                    f"is below the required {args.min_speedup}x",
                    file=sys.stderr,
                )
                return 1
        return 0
    raise ValueError(
        f"unknown bench command {args.bench_command!r}"
    )  # pragma: no cover


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetSimulator
    from repro.workloads.traces import Trace

    if args.fleet_command != "run":  # pragma: no cover - argparse restricts
        raise ValueError(f"unknown fleet command {args.fleet_command!r}")
    try:
        trace = Trace.load(args.trace)
    except (OSError, ValueError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 2
    problems = trace.validate()
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        return 2
    try:
        sim = FleetSimulator(
            trace,
            nodes=args.nodes,
            cap_w=args.cap_w,
            epoch_launches=args.epoch_launches,
            transport=args.transport,
            max_sessions_per_node=args.max_sessions_per_node,
            max_queued=args.max_queued,
            rebalance=args.rebalance,
            use_matrix=not args.scalar,
            cache_dir=args.cache_dir,
        )
    except ValueError as exc:
        print(f"repro fleet run: {exc}", file=sys.stderr)
        return 2
    report = sim.run()

    cap = f"{args.cap_w:g} W cap" if args.cap_w is not None else "uncapped"
    print(
        f"fleet {trace.header.name}: {args.nodes} node(s) ({args.transport}), "
        f"{cap}, {report.launches()} launches over {len(report.epochs)} "
        f"epoch(s)"
    )
    hosted: dict = {}
    for session_id, node_id in report.placement.items():
        hosted.setdefault(node_id, []).append(session_id)
    for node_id in sorted(hosted):
        print(f"  {node_id}: {len(hosted[node_id])} session(s)")
    if report.queued or report.shed:
        print(f"  admission: {report.queued} queued, {report.shed} shed")
    if report.epochs and report.epochs[-1].budgets:
        last = report.epochs[-1]
        total = sum(last.budgets.values())
        print(
            f"  last epoch budgets: {total:.1f} W apportioned of "
            f"{last.cap_w:g} W cap"
        )
        for node_id, watts in sorted(last.budgets.items()):
            print(f"    {node_id}: {watts:.1f} W")
    print(f"  aggregate: {report.aggregate_stats().format()}")
    if args.trace_out or args.metrics_out:
        from repro.obs.exporters import write_jsonl, write_prometheus

        if args.trace_out:
            count = write_jsonl(report.spans, args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}")
        if args.metrics_out:
            write_prometheus(report.registry, args.metrics_out)
            print(f"wrote metrics to {args.metrics_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.traces import (
        FAMILIES,
        ScenarioGenerator,
        Trace,
        TraceReplayer,
        stamp_decisions,
        trace_from_benchmark,
    )

    if args.trace_command == "record":
        trace = trace_from_benchmark(
            args.benchmark,
            policy=args.policy,
            invocations=args.invocations,
            predictor=args.predictor,
        )
        stamped = stamp_decisions(trace, cache_dir=args.cache_dir)
        output = args.output or f"{args.benchmark}-{args.policy}.jsonl"
        stamped.dump(output)
        print(
            f"recorded {stamped.header.name}: {len(stamped.events)} launches "
            f"across {args.invocations} invocation(s) -> {output}"
        )
        return 0

    if args.trace_command == "replay":
        try:
            trace = Trace.load(args.trace)
        except ValueError as exc:
            print(f"{args.trace}: {exc}", file=sys.stderr)
            return 2
        problems = trace.validate()
        if problems:
            for problem in problems:
                print(f"{args.trace}: {problem}", file=sys.stderr)
            return 2
        report = TraceReplayer(
            trace,
            check=not args.no_check,
            use_matrix=not args.scalar,
            cache_dir=args.cache_dir,
        ).replay()
        print(
            f"replayed {trace.header.name}: {len(report.outcomes)} launches, "
            f"{len(report.stats)} session(s), {report.checked} decision(s) checked"
        )
        for session_id, stats in sorted(report.stats.items()):
            print(f"  {session_id}: {stats.format()}")
        if report.health is not None:
            for name, session in sorted(report.health.sessions.items()):
                print(
                    f"  health {name}: {session.state.name}, "
                    f"{session.drift_events} drift event(s)"
                )
        for result in report.assertion_results:
            print(f"  {result}")
        for mismatch in report.mismatches:
            print(f"  MISMATCH {mismatch}")
        if args.trace_out or args.metrics_out:
            from repro.obs.exporters import write_jsonl, write_prometheus

            if args.trace_out:
                count = write_jsonl(report.spans, args.trace_out)
                print(f"wrote {count} spans to {args.trace_out}")
            if args.metrics_out:
                write_prometheus(report.registry, args.metrics_out)
                print(f"wrote metrics to {args.metrics_out}")
        return 0 if report.passed else 1

    if args.trace_command == "validate":
        import json

        from repro.obs.exporters import validate_trace_file

        with open(args.schema, encoding="utf-8") as handle:
            schema = json.load(handle)
        problems = validate_trace_file(args.trace, schema)
        try:
            problems.extend(Trace.load(args.trace).validate())
        except ValueError as exc:
            problems.append(str(exc))
        for problem in problems:
            print(problem)
        if problems:
            print(f"{args.trace}: {len(problems)} problem(s)")
            return 1
        print(f"{args.trace}: valid")
        return 0

    if args.trace_command == "generate":
        families = args.families or list(FAMILIES)
        generator = ScenarioGenerator(seed=args.seed)
        try:
            paths = generator.dump_corpus(args.output_dir, families)
        except (KeyError, RuntimeError) as exc:
            print(f"repro trace generate: {exc}", file=sys.stderr)
            return 2
        for path in paths:
            print(f"wrote {path}")
        return 0

    raise ValueError(
        f"unknown trace command {args.trace_command!r}"
    )  # pragma: no cover


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.exporters import (
        format_summary,
        read_jsonl,
        summarize_spans,
        validate_trace_file,
    )

    if args.obs_command == "summarize":
        print(format_summary(summarize_spans(read_jsonl(args.trace))))
        return 0
    if args.obs_command == "validate":
        import json

        with open(args.schema, encoding="utf-8") as handle:
            schema = json.load(handle)
        errors = validate_trace_file(args.trace, schema)
        for error in errors:
            print(error)
        if errors:
            print(f"{args.trace}: {len(errors)} invalid spans")
            return 1
        print(f"{args.trace}: all spans valid")
        return 0
    if args.obs_command == "health":
        import json

        from repro.obs import HealthMonitor, format_health_report

        # Offline recompute: feeding the recorded launch spans through
        # a fresh monitor is the same deterministic computation the
        # live monitor ran, so reports match a --health run exactly.
        monitor = HealthMonitor()
        for span in read_jsonl(args.trace):
            monitor.observe_span(span)
        if args.json:
            print(json.dumps(monitor.report(), indent=2, sort_keys=True))
        else:
            print(format_health_report(monitor.report()))
        drift = monitor.drift_events()
        if args.min_drift is not None and drift < args.min_drift:
            print(
                f"{args.trace}: {drift} drift event(s) < required "
                f"{args.min_drift}",
                file=sys.stderr,
            )
            return 1
        if args.max_drift is not None and drift > args.max_drift:
            print(
                f"{args.trace}: {drift} drift event(s) > allowed "
                f"{args.max_drift}",
                file=sys.stderr,
            )
            return 1
        return 0
    raise ValueError(f"unknown obs command {args.obs_command!r}")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise ValueError(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
